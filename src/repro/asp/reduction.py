"""The ASRS -> ASP reduction (Section 4.1).

Every spatial object ``o`` spawns a rectangle of the query size ``a x b``
whose **top-right corner** sits at ``o`` (the paper notes other corners
work too; all four anchorings are provided for completeness and tested
to be equivalent up to a coordinate shift).

Lemma 1: rectangle ``r_i`` covers a point ``p`` iff object ``o_i`` lies
strictly inside the candidate region of size ``a x b`` whose bottom-left
corner is ``p``.  Theorem 1: a minimum-distance point of the reduced ASP
instance yields a minimum-distance region of the ASRS instance.
"""

from __future__ import annotations

import numpy as np

from ..core.geometry import Rect
from ..core.objects import SpatialDataset
from .rectset import RectSet

_ANCHORS = ("top_right", "top_left", "bottom_right", "bottom_left")


def reduce_to_asp(
    dataset: SpatialDataset,
    width: float,
    height: float,
    anchor: str = "top_right",
) -> RectSet:
    """Generate one ASP rectangle per spatial object.

    Row ``i`` of the returned :class:`RectSet` corresponds to row ``i`` of
    ``dataset``, so channel weights compiled over the dataset apply to
    the rectangles unchanged.
    """
    if width <= 0 or height <= 0:
        raise ValueError("query size must be positive")
    if anchor not in _ANCHORS:
        raise ValueError(f"anchor must be one of {_ANCHORS}")
    xs, ys = dataset.xs, dataset.ys
    if anchor == "top_right":
        x_min, x_max = xs - width, xs
        y_min, y_max = ys - height, ys
    elif anchor == "top_left":
        x_min, x_max = xs, xs + width
        y_min, y_max = ys - height, ys
    elif anchor == "bottom_right":
        x_min, x_max = xs - width, xs
        y_min, y_max = ys, ys + height
    else:  # bottom_left
        x_min, x_max = xs, xs + width
        y_min, y_max = ys, ys + height
    return RectSet(x_min, y_min, x_max, y_max)


def region_for_point(x: float, y: float, width: float, height: float) -> Rect:
    """The ASRS region corresponding to an ASP answer point (Theorem 1).

    With the default top-right anchoring, the answer region has its
    bottom-left corner at the ASP point.
    """
    return Rect.from_bottom_left(x, y, width, height)


def asp_search_space(rects: RectSet) -> Rect:
    """The space DS-Search must explore: the MBR of the ASP rectangles.

    Any point outside this MBR is covered by no rectangle; its candidate
    region is empty and is handled by the empty-region seed, so the
    search itself can stay inside the MBR.
    """
    return rects.bounds()


def covering_indices(rects: RectSet, x: float, y: float) -> np.ndarray:
    """Indices of rectangles strictly covering (x, y) -- ``R_p``."""
    return np.flatnonzero(rects.covering_mask(x, y))
