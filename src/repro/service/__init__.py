"""The typed serving facade over the whole engine stack (DESIGN.md §11).

:class:`RegionService` is the one operational surface a durable,
restartable ASRS server needs: it owns a
:class:`~repro.engine.SessionPool` and, per dataset, the bundle path,
write-ahead log and a declarative :class:`DurabilityPolicy`
(checkpoint every K records / B bytes / on close, compact the log by
batch-merging, replay on open).  Requests and responses are typed
dataclasses with a stable JSON codec -- :class:`DatasetSpec`,
:class:`QueryRequest`, :class:`UpdateRequest`, :class:`RegionResult` --
and :mod:`repro.service.httpd` serves that codec over HTTP
(``repro serve``), including a read-only ``--follow`` replica mode
that polls and replays the writer's log.
"""

from .facade import (
    DatasetUnavailable,
    PersistResult,
    RegionService,
    parse_term,
    term_specs,
)
from .types import (
    CheckpointResult,
    CompactResult,
    DatasetSpec,
    DurabilityPolicy,
    OpenResult,
    QueryRequest,
    RegionResult,
    UpdateRequest,
    UpdateResult,
    decode_float,
    encode_float,
)

__all__ = [
    "CheckpointResult",
    "CompactResult",
    "DatasetSpec",
    "DatasetUnavailable",
    "DurabilityPolicy",
    "OpenResult",
    "PersistResult",
    "QueryRequest",
    "RegionResult",
    "RegionService",
    "UpdateRequest",
    "UpdateResult",
    "decode_float",
    "encode_float",
    "parse_term",
    "term_specs",
]
