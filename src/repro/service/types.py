"""The typed request/response surface of :class:`~repro.service.RegionService`.

Every serving operation is described by a frozen dataclass with a
stable ``to_dict()`` / ``from_dict()`` JSON codec (DESIGN.md §11.2):

* :class:`DatasetSpec` -- how a dataset is bound: CSV path + declared
  columns, optional bundle and write-ahead-log paths, grid granularity,
  and a :class:`DurabilityPolicy`;
* :class:`QueryRequest` -- one ASRS query as data: term specs
  (``fD:attr`` / ``fA:attr@sel=value``), region size, target vector,
  weights, method knobs;
* :class:`UpdateRequest` -- one mutation: records to append (inline or
  from a CSV) and/or row indices to delete;
* :class:`RegionResult` -- a structured answer: region, score
  (the representation distance), representation, optional search
  stats, the dataset epoch it was answered at, and wall-clock timing;
* :class:`UpdateResult` / :class:`CheckpointResult` /
  :class:`CompactResult` / :class:`OpenResult` -- structured outcomes
  of the mutation and durability operations.

The codec is strict JSON: non-finite floats -- legal scores when a
target is unreachable, and legal targets -- are encoded as the sentinel
strings ``"NaN"`` / ``"Infinity"`` / ``"-Infinity"`` rather than
relying on ``json.dumps(allow_nan=True)``'s non-standard literals, so
any JSON parser (the HTTP frontend's clients included) can round-trip
a result bit-for-bit.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields
from typing import Any, Iterable, Mapping, Tuple

import numpy as np

# ----------------------------------------------------------------------
# Non-finite-safe float codec
# ----------------------------------------------------------------------


def encode_float(value: float) -> float | str:
    """A strictly-JSON value for one float (sentinel strings for non-finite)."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    return value


def decode_float(value: "float | int | str") -> float:
    """Invert :func:`encode_float` (plain numbers pass through)."""
    if isinstance(value, str):
        if value == "NaN":
            return math.nan
        if value == "Infinity":
            return math.inf
        if value == "-Infinity":
            return -math.inf
        raise ValueError(f"not an encoded float: {value!r}")
    return float(value)


def _encode_floats(values: Iterable[float]) -> "list[float | str]":
    return [encode_float(v) for v in values]


def _decode_floats(values: "Iterable[float | int | str]") -> Tuple[float, ...]:
    return tuple(decode_float(v) for v in values)


def dumps(document: object) -> str:
    """Serialize an already-encoded document to strict JSON.

    The single sanctioned ``json.dumps`` of the serving surface
    (lint rule RPL004): ``allow_nan=False`` guarantees a document
    that skipped the :func:`encode_float` sentinels fails loudly
    here instead of emitting the non-interoperable bare ``NaN``
    token to a client.
    """
    return json.dumps(document, allow_nan=False)


def loads(text: str | bytes) -> object:
    """Parse strict JSON (inverse of :func:`dumps`)."""
    return json.loads(text)


# ----------------------------------------------------------------------
# Durability policy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DurabilityPolicy:
    """Declarative durability for one dataset served by the facade.

    The policy turns the checkpoint/compaction choreography that used to
    live in ``cli.py`` into knobs (DESIGN.md §11.3): after every
    effective update the service reads the write-ahead log's
    :meth:`~repro.engine.wal.WriteAheadLog.state` and

    * **checkpoints** (CSV + bundle saved, log truncated) when the log
      holds >= ``checkpoint_every_records`` records or
      >= ``checkpoint_every_bytes`` bytes;
    * otherwise **compacts** (N records merged into one equivalent
      batch, bundle untouched) when the log holds
      >= ``compact_every_records`` records;
    * checkpoints once more on :meth:`RegionService.close` when
      ``checkpoint_on_close`` and any records remain.

    ``replay_on_open`` controls whether an existing log is replayed
    onto the freshly opened session (the crash-recovery default); it is
    the only knob a read-only replica honours.  ``None`` disables a
    trigger.  The K-records and B-bytes triggers require the spec to
    name both ``data`` and ``index`` paths -- a checkpoint that cannot
    persist the dataset would truncate the only durable copy of the
    updates, so :meth:`RegionService.open` refuses such a combination
    up front.  ``checkpoint_on_close`` is best-effort by design: when
    the spec lacks either path, :meth:`RegionService.close` skips the
    checkpoint and leaves the log intact as the recovery path (a
    WAL-only deployment stays valid; its log is simply bounded by
    explicit :meth:`~RegionService.compact` calls or the
    ``compact_every_records`` trigger, not by checkpoints).
    """

    checkpoint_every_records: int | None = None
    checkpoint_every_bytes: int | None = None
    checkpoint_on_close: bool = True
    compact_every_records: int | None = None
    replay_on_open: bool = True

    def __post_init__(self) -> None:
        for name in (
            "checkpoint_every_records",
            "checkpoint_every_bytes",
            "compact_every_records",
        ):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise ValueError(f"{name} must be a positive int or None")

    @property
    def wants_checkpoints(self) -> bool:
        """Whether any trigger can ever fire a checkpoint."""
        return (
            self.checkpoint_every_records is not None
            or self.checkpoint_every_bytes is not None
            or self.checkpoint_on_close
        )

    def checkpoint_due(self, wal_state: Mapping) -> bool:
        """Whether a log in ``wal_state`` trips a checkpoint trigger."""
        records, nbytes = wal_state["records"], wal_state["bytes"]
        if (
            self.checkpoint_every_records is not None
            and records >= self.checkpoint_every_records
        ):
            return True
        return (
            self.checkpoint_every_bytes is not None
            and records > 0
            and nbytes >= self.checkpoint_every_bytes
        )

    def compact_due(self, wal_state: Mapping) -> bool:
        """Whether a log in ``wal_state`` trips the compaction trigger."""
        return (
            self.compact_every_records is not None
            and wal_state["records"] >= self.compact_every_records
        )

    def to_dict(self) -> dict:
        return {
            "checkpoint_every_records": self.checkpoint_every_records,
            "checkpoint_every_bytes": self.checkpoint_every_bytes,
            "checkpoint_on_close": self.checkpoint_on_close,
            "compact_every_records": self.compact_every_records,
            "replay_on_open": self.replay_on_open,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "DurabilityPolicy":
        return cls(**{f.name: data[f.name] for f in fields(cls) if f.name in data})


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DatasetSpec:
    """How the service binds (and persists) one dataset.

    ``data`` is the baseline CSV the service loads on open and rewrites
    on checkpoint; ``None`` means the dataset is handed in-memory to
    :meth:`RegionService.open` (no checkpointing possible).  ``index``
    and ``wal`` are the bundle and write-ahead-log paths; either may
    name a not-yet-existing file (created on first save / first logged
    mutation).  ``granularity`` is ``"auto"`` or ``(sx, sy)``.
    """

    key: str
    data: str | None = None
    categorical: Tuple[str, ...] = ()
    numeric: Tuple[str, ...] = ()
    index: str | None = None
    wal: str | None = None
    granularity: Any = "auto"
    durability: DurabilityPolicy = field(default_factory=DurabilityPolicy)

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("DatasetSpec.key must be a non-empty string")
        object.__setattr__(self, "categorical", tuple(self.categorical))
        object.__setattr__(self, "numeric", tuple(self.numeric))
        granularity = self.granularity
        if not isinstance(granularity, str):
            granularity = tuple(int(g) for g in granularity)
            object.__setattr__(self, "granularity", granularity)

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "data": self.data,
            "categorical": list(self.categorical),
            "numeric": list(self.numeric),
            "index": self.index,
            "wal": self.wal,
            "granularity": (
                self.granularity
                if isinstance(self.granularity, str)
                else list(self.granularity)
            ),
            "durability": self.durability.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "DatasetSpec":
        kwargs = {
            f.name: data[f.name]
            for f in fields(cls)
            if f.name in data and f.name != "durability"
        }
        if "durability" in data:
            kwargs["durability"] = DurabilityPolicy.from_dict(data["durability"])
        return cls(**kwargs)


@dataclass(frozen=True)
class QueryRequest:
    """One ASRS query as data (the serving twin of :class:`ASRSQuery`).

    ``terms`` use the CLI grammar (``fD:attr``, ``fA:attr@sel=value``,
    ``fS:attr``); requests sharing a terms tuple share one interned
    aggregator object inside the facade, so they hit every session
    cache.  ``method`` is ``"gids"`` or ``"ds"``; ``topk`` > 1 answers
    through the exact top-k search (``method`` is then ignored).
    """

    dataset: str
    terms: Tuple[str, ...]
    width: float
    height: float
    target: Tuple[float, ...]
    weights: Tuple[float, ...] | None = None
    method: str = "gids"
    delta: float = 0.0
    probe_cells: int = 16
    topk: int = 1
    p: int = 1
    include_stats: bool = False

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("QueryRequest needs at least one term")
        if self.method not in ("gids", "ds"):
            raise ValueError(f"method must be 'gids' or 'ds', got {self.method!r}")
        if self.topk < 1:
            raise ValueError("topk must be >= 1")
        object.__setattr__(self, "terms", tuple(self.terms))
        object.__setattr__(self, "target", tuple(float(v) for v in self.target))
        if self.weights is not None:
            object.__setattr__(
                self, "weights", tuple(float(v) for v in self.weights)
            )

    def to_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "terms": list(self.terms),
            "width": encode_float(self.width),
            "height": encode_float(self.height),
            "target": _encode_floats(self.target),
            "weights": (
                None if self.weights is None else _encode_floats(self.weights)
            ),
            "method": self.method,
            "delta": encode_float(self.delta),
            "probe_cells": self.probe_cells,
            "topk": self.topk,
            "p": self.p,
            "include_stats": self.include_stats,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "QueryRequest":
        kwargs = dict(
            dataset=data["dataset"],
            terms=tuple(data["terms"]),
            width=decode_float(data["width"]),
            height=decode_float(data["height"]),
            target=_decode_floats(data["target"]),
        )
        if data.get("weights") is not None:
            kwargs["weights"] = _decode_floats(data["weights"])
        for name in ("method", "probe_cells", "topk", "p", "include_stats"):
            if name in data:
                kwargs[name] = data[name]
        if "delta" in data:
            kwargs["delta"] = decode_float(data["delta"])
        return cls(**kwargs)


@dataclass(frozen=True)
class UpdateRequest:
    """One mutation: delete current rows, then append new ones.

    ``append`` holds inline records ``(x, y, {attr: value})``;
    ``append_csv`` names a CSV sharing the dataset's columns (the CLI
    path).  ``delete`` holds 0-based row indices into the dataset as it
    is when the update applies.  Either side may be empty, not both.
    """

    dataset: str
    append: Tuple[tuple, ...] = ()
    append_csv: str | None = None
    delete: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "append",
            tuple((float(x), float(y), dict(attrs)) for x, y, attrs in self.append),
        )
        object.__setattr__(self, "delete", tuple(int(i) for i in self.delete))
        if not self.append and not self.delete and self.append_csv is None:
            raise ValueError(
                "UpdateRequest needs rows to append and/or indices to delete"
            )

    def to_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "append": [
                [encode_float(x), encode_float(y), attrs]
                for x, y, attrs in self.append
            ],
            "append_csv": self.append_csv,
            "delete": list(self.delete),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "UpdateRequest":
        return cls(
            dataset=data["dataset"],
            append=tuple(
                (decode_float(x), decode_float(y), attrs)
                for x, y, attrs in data.get("append", ())
            ),
            append_csv=data.get("append_csv"),
            delete=tuple(data.get("delete", ())),
        )


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RegionResult:
    """A structured ASRS answer (the serving twin of the engine result).

    ``region`` is ``(x_min, y_min, x_max, y_max)``; ``score`` is the
    representation distance (lower is more similar; may be non-finite
    for degenerate targets, which the codec round-trips exactly);
    ``epoch`` is the dataset epoch the answer was computed at, so a
    client can correlate answers with updates; ``elapsed_s`` is the
    facade-measured wall clock of the solve.
    """

    region: Tuple[float, ...]
    score: float
    representation: Tuple[float, ...] | None = None
    stats: dict | None = None
    epoch: int = 0
    elapsed_s: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "region", tuple(float(v) for v in self.region)
        )
        object.__setattr__(self, "score", float(self.score))
        if self.representation is not None:
            object.__setattr__(
                self,
                "representation",
                tuple(float(v) for v in self.representation),
            )

    @classmethod
    def from_engine(
        cls,
        result: Any,
        *,
        epoch: int,
        elapsed_s: float,
        stats: Any = None,
    ) -> "RegionResult":
        """Wrap a :class:`repro.core.query.RegionResult` (or MaxRS result)."""
        region = result.region
        score = getattr(result, "distance", None)
        if score is None:
            score = result.score
        representation = getattr(result, "representation", None)
        return cls(
            region=(region.x_min, region.y_min, region.x_max, region.y_max),
            score=score,
            representation=(
                None if representation is None else tuple(representation)
            ),
            stats=_stats_dict(stats),
            epoch=epoch,
            elapsed_s=elapsed_s,
        )

    def to_dict(self) -> dict:
        return {
            "region": _encode_floats(self.region),
            "score": encode_float(self.score),
            "representation": (
                None
                if self.representation is None
                else _encode_floats(self.representation)
            ),
            "stats": self.stats,
            "epoch": self.epoch,
            "elapsed_s": encode_float(self.elapsed_s),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RegionResult":
        representation = data.get("representation")
        return cls(
            region=_decode_floats(data["region"]),
            score=decode_float(data["score"]),
            representation=(
                None if representation is None else _decode_floats(representation)
            ),
            stats=data.get("stats"),
            epoch=int(data.get("epoch", 0)),
            elapsed_s=decode_float(data.get("elapsed_s", 0.0)),
        )


def _stats_dict(stats: Any) -> dict | None:
    """Search stats as a JSON-safe dict (numpy scalars unwrapped)."""
    if stats is None:
        return None
    out: dict = {}
    source = stats if isinstance(stats, dict) else vars(stats)
    for name, value in source.items():
        if isinstance(value, (np.integer,)):
            value = int(value)
        elif isinstance(value, (np.floating,)):
            value = float(value)
        if isinstance(value, (int, bool, str)) or value is None:
            out[name] = value
        elif isinstance(value, float):
            out[name] = encode_float(value)
    return out


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one :meth:`RegionService.update` call."""

    dataset: str
    epoch: int
    appended: int
    deleted: int
    wal_logged: bool = False
    index_patched: bool = False
    dirty_cells: int = 0
    cell_entries_kept: int = 0
    checkpointed: bool = False
    compacted: bool = False
    #: The update committed, but the policy-driven checkpoint/compaction
    #: after it failed -- the dataset is serving degraded (DESIGN.md
    #: §12).  Deliberately not an error: erroring after the commit would
    #: push clients into retrying an applied batch.
    degraded: bool = False
    elapsed_s: float = 0.0

    def to_dict(self) -> dict:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["elapsed_s"] = encode_float(self.elapsed_s)
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "UpdateResult":
        kwargs = {f.name: data[f.name] for f in fields(cls) if f.name in data}
        if "elapsed_s" in kwargs:
            kwargs["elapsed_s"] = decode_float(kwargs["elapsed_s"])
        return cls(**kwargs)


@dataclass(frozen=True)
class CheckpointResult:
    """Outcome of one :meth:`RegionService.checkpoint` call."""

    dataset: str
    epoch: int
    data_path: str | None
    index_path: str | None
    wal_records_dropped: int = 0
    n: int = 0

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "CheckpointResult":
        return cls(**{f.name: data[f.name] for f in fields(cls) if f.name in data})


@dataclass(frozen=True)
class CompactResult:
    """Outcome of one :meth:`RegionService.compact` call."""

    dataset: str
    records_before: int
    records_after: int
    bytes_before: int
    bytes_after: int
    epoch: int

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "CompactResult":
        return cls(**{f.name: data[f.name] for f in fields(cls) if f.name in data})


@dataclass(frozen=True)
class OpenResult:
    """Outcome of one :meth:`RegionService.open` call.

    ``replay_*`` mirror the :class:`~repro.engine.wal.ReplayStats` of
    the open-time recovery (zeros when no log was replayed), so callers
    -- the CLI included -- can report exactly what recovery did.
    """

    dataset: str
    n: int
    epoch: int
    restored_from_bundle: bool = False
    replayed: int = 0
    replay_skipped: int = 0
    replay_appended: int = 0
    replay_deleted: int = 0
    replay_truncated_bytes: int = 0

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "OpenResult":
        return cls(**{f.name: data[f.name] for f in fields(cls) if f.name in data})
