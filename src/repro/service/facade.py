"""The one serving facade: :class:`RegionService` (DESIGN.md §11).

PRs 1-4 built four layers a production caller had to hand-compose --
:class:`~repro.engine.QuerySession` (warm solves),
:class:`~repro.engine.SessionPool` (cross-dataset memory budget),
``engine/persist`` (bundles) and ``engine/wal`` (durable updates) --
plus the checkpoint/replay choreography that lived only in ``cli.py``.
``RegionService`` owns all of it behind one typed surface:

* :meth:`open` binds a :class:`~repro.service.DatasetSpec` -- loads the
  CSV, restores the bundle if one exists, attaches the write-ahead log
  and replays it (crash recovery), registering the session in the pool;
* :meth:`query` / :meth:`query_batch` / :meth:`query_topk` answer
  :class:`~repro.service.QueryRequest` s with structured
  :class:`~repro.service.RegionResult` s, interning one aggregator
  object per term tuple so every request shape hits the session caches;
* :meth:`update` applies an :class:`~repro.service.UpdateRequest`
  (write-ahead-logged when the spec names a WAL) and then runs the
  spec's :class:`~repro.service.DurabilityPolicy`: checkpoint every K
  records / B bytes, else compact the log, else nothing;
* :meth:`checkpoint` persists the (CSV, bundle) pair and truncates the
  log; :meth:`compact` merges the log's records into one equivalent
  batch without touching the bundle; :meth:`close` checkpoints once
  more per policy;
* :meth:`refresh` is the read-only replica tick: re-replay the log the
  writer appends to (never repairing -- the reader must not truncate a
  tail the writer is mid-append on), falling back to a full reopen when
  the writer checkpointed past this replica.

Thread-safety: sessions already serialize solves against updates (the
update gate); the facade adds a per-service lock only around its own
registry and counters, so query traffic runs as parallel as the engine
allows.  Every operation the facade performs goes through the pool, so
the byte budget keeps tracking growth.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Dict, Sequence, Tuple

import numpy as np

from .. import faults
from ..analysis.sanitizer import make_lock, sanitize_class
from ..core.aggregators import (
    AverageAggregator,
    CompositeAggregator,
    DistributionAggregator,
    SumAggregator,
)
from ..core.objects import SpatialDataset
from ..core.query import ASRSQuery
from ..core.selection import SelectAll, SelectByValue
from ..dssearch.search import SearchSettings
from ..engine import SessionPool
from ..engine.wal import ReplayStats, WalRollbackError, WalWriteError, replay
from .types import (
    CheckpointResult,
    CompactResult,
    DatasetSpec,
    OpenResult,
    QueryRequest,
    RegionResult,
    UpdateRequest,
    UpdateResult,
)

#: Failpoints at the facade's *ordering* points -- the places where the
#: CSV-before-bundle-before-truncate and commit-before-policy sequences
#: could silently invert under a fault (DESIGN.md §12).
FP_UPDATE_PRE_POLICY = faults.register("facade.update.pre-policy")
FP_CHECKPOINT_PRE_CSV = faults.register("facade.checkpoint.pre-csv")
FP_CHECKPOINT_PRE_BUNDLE = faults.register("facade.checkpoint.pre-bundle")
FP_COMPACT_PRE_REWRITE = faults.register("facade.compact.pre-rewrite")
FP_PERSIST_PRE_SAVE = faults.register("facade.persist.pre-save")
FP_REFRESH_REOPEN = faults.register("facade.refresh.reopen")


class DatasetUnavailable(RuntimeError):
    """A mutation (or repair-gated operation) refused by health state.

    Queries keep serving the last applied epoch; the HTTP frontend maps
    this to 503 so clients and load balancers see the outage instead of
    silently stale acknowledgements.
    """

    def __init__(self, dataset: str, state: str, cause: str, verb: str) -> None:
        super().__init__(
            f"dataset {dataset!r} is {state} ({cause}); {verb} refused -- "
            "queries still serve; repair with checkpoint"
            + ("/recover" if state == "degraded" else " after recover")
        )
        self.dataset = dataset
        self.state = state
        self.cause = cause


_TERM_KINDS = {
    "fD": DistributionAggregator,
    "fA": AverageAggregator,
    "fS": SumAggregator,
}
_TERM_TAGS = {cls: tag for tag, cls in _TERM_KINDS.items()}


def parse_term(spec: str):
    """Parse one ``fD:attr`` / ``fA:attr@sel_attr=value`` term spec."""
    try:
        kind, rest = spec.split(":", 1)
    except ValueError:
        raise ValueError(f"bad term {spec!r}: expected e.g. fD:category") from None
    if kind not in _TERM_KINDS:
        raise ValueError(f"bad term kind {kind!r}: one of {sorted(_TERM_KINDS)}")
    if "@" in rest:
        attr, sel = rest.split("@", 1)
        try:
            sel_attr, sel_value = sel.split("=", 1)
        except ValueError:
            raise ValueError(f"bad selection {sel!r}: expected attr=value") from None
        selection = SelectByValue(sel_attr, sel_value)
    else:
        attr = rest
        selection = SelectAll()
    return _TERM_KINDS[kind](attr, selection)


def term_specs(aggregator: CompositeAggregator) -> Tuple[str, ...]:
    """Invert :func:`parse_term` for a built-in aggregator, or raise.

    Lets callers holding an aggregator *object* (benchmarks, tests)
    phrase it as a typed :class:`QueryRequest`.  Only exact built-in
    terms with ``SelectAll`` / string-valued ``SelectByValue``
    selections survive the string grammar round-trip.
    """
    specs = []
    for term in aggregator.terms:
        tag = _TERM_TAGS.get(type(term))
        if tag is None:
            raise ValueError(f"term {term!r} has no spec-string form")
        sel = term.selection
        if type(sel) is SelectAll:
            specs.append(f"{tag}:{term.attribute}")
        elif type(sel) is SelectByValue and isinstance(sel.value, str):
            specs.append(f"{tag}:{term.attribute}@{sel.attribute}={sel.value}")
        else:
            raise ValueError(f"selection {sel!r} has no spec-string form")
    return tuple(specs)


@dataclass(frozen=True)
class PersistResult:
    """Outcome of one :meth:`RegionService.persist` call.

    ``wal_action`` records what happened to the write-ahead log:
    ``"checkpointed"`` (bundle save truncated it), ``"kept"`` (bundle
    saved but the baseline CSV does not reflect the logged state, so
    the records stay), ``"reset"`` (the baseline CSV was overwritten
    with the mutated data and the log restarted at epoch 0),
    ``"side_copy"`` (data saved elsewhere; log untouched) or ``None``
    (no log attached / nothing saved).
    """

    dataset: str
    epoch: int
    saved_data: str | None = None
    data_n: int = 0
    saved_index: str | None = None
    wal_path: str | None = None
    wal_action: str | None = None
    wal_dropped: int = 0
    baseline_current: bool = False

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class RegionService:
    """One typed, durable serving facade over the whole engine stack.

    Parameters
    ----------
    pool:
        A :class:`~repro.engine.SessionPool` to own; one is created
        from ``max_bytes`` / ``max_sessions`` when omitted.
    settings:
        Default :class:`~repro.dssearch.search.SearchSettings` for
        sessions the service opens.
    read_only:
        A read-only replica: mutation and persistence raise
        ``PermissionError``, write-ahead logs are never attached (and
        never repaired), and :meth:`refresh` replays the writer's log.
    """

    def __init__(
        self,
        pool: SessionPool | None = None,
        *,
        max_bytes: int | None = None,
        max_sessions: int | None = None,
        settings: SearchSettings | None = None,
        read_only: bool = False,
        aggregator_cache_size: int = 256,
    ) -> None:
        self._pool = pool or SessionPool(
            max_bytes=max_bytes, max_sessions=max_sessions
        )
        self._settings = settings
        self.read_only = bool(read_only)
        self._lock = make_lock("RegionService._lock")
        self._specs: Dict[str, DatasetSpec] = {}  # guarded-by: _lock
        # The facade holds its own strong reference to every open
        # session: pool eviction under a byte/session budget clears a
        # session's *caches* but must never lose the session object
        # itself (it may hold mutations no log or bundle covers yet) --
        # session() re-admits on access.
        self._sessions: Dict[str, object] = {}  # guarded-by: _lock
        # The dataset object loaded at open time, *before* any replay:
        # persist() needs to know whether the on-disk baseline still
        # reflects the session (see PersistResult.wal_action).
        self._baselines: Dict[str, SpatialDataset] = {}  # guarded-by: _lock
        # Interned aggregators, LRU-bounded: term tuples arrive from
        # clients, so an unbounded table would let request variety (or
        # an adversarial client) grow the server without limit.
        self._aggregator_cache_size = max(1, int(aggregator_cache_size))
        self._aggregators: (  # guarded-by: _lock
            "OrderedDict[Tuple[str, Tuple[str, ...]], CompositeAggregator]"
        ) = OrderedDict()
        self._counters: Dict[str, Dict[str, int]] = {}  # guarded-by: _lock
        # Per-dataset health (DESIGN.md §12): "ok" | "degraded" |
        # "failed".  Degraded = a durability write failed but log and
        # session still agree (mutations refused, queries serve,
        # checkpoint repairs).  Failed = a WAL rollback failure left an
        # unapplied record in the log (checkpoint/compact also refused
        # -- they would enshrine the orphan -- only recover() repairs).
        self._health: Dict[str, Dict[str, object]] = {}  # guarded-by: _lock
        # (wal size, mtime_ns, session epoch) at the last successful
        # refresh(), per key: unchanged marks make replica idle ticks
        # O(1) instead of a full log re-scan.
        self._wal_marks: Dict[str, tuple] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Dataset lifecycle
    # ------------------------------------------------------------------
    def open(
        self, spec: DatasetSpec, dataset: SpatialDataset | None = None
    ) -> OpenResult:
        """Bind one dataset per its spec; returns what recovery did.

        Loads ``spec.data`` (unless ``dataset`` is handed in-memory),
        restores ``spec.index`` when the bundle exists, attaches
        ``spec.wal`` (writer mode) and replays it per the durability
        policy.  The session lands in the pool under ``spec.key``.
        """
        with self._lock:
            if spec.key in self._sessions:
                raise ValueError(
                    f"dataset {spec.key!r} is already open; evict or close first"
                )
        session, dataset, result = self._build(spec, dataset)
        self._register(spec, session, dataset)
        return result

    def _build(
        self, spec: DatasetSpec, dataset: SpatialDataset | None
    ) -> tuple:
        """Construct (but do not register) a session per its spec.

        The whole open choreography -- CSV load, bundle restore, WAL
        attach, replay -- without touching the registries, so
        :meth:`refresh` can build a replacement session while the old
        one keeps serving.  Returns ``(session, dataset, OpenResult)``.
        """
        policy = spec.durability
        if (
            not self.read_only
            and spec.wal is not None
            and (
                policy.checkpoint_every_records is not None
                or policy.checkpoint_every_bytes is not None
            )
            and (spec.data is None or spec.index is None)
        ):
            raise ValueError(
                "a checkpoint trigger needs both data= and index= paths in "
                "the DatasetSpec: checkpointing truncates the write-ahead "
                "log, and without a persisted (CSV, bundle) pair the log is "
                "the only durable copy of the updates"
            )
        if dataset is None:
            if spec.data is None:
                raise ValueError(
                    f"DatasetSpec {spec.key!r} names no data path and no "
                    "in-memory dataset was passed"
                )
            from ..data.io import load_csv_infer

            dataset = load_csv_infer(
                spec.data,
                categorical=list(spec.categorical),
                numeric=list(spec.numeric),
            )
        restored = False
        if spec.index is not None and os.path.exists(spec.index):
            from ..engine.persist import load_session

            session = load_session(spec.index, dataset, settings=self._settings)
            restored = True
        else:
            from ..engine.session import QuerySession

            session = QuerySession(
                dataset, granularity=spec.granularity, settings=self._settings
            )
        rstats = ReplayStats(final_epoch=session.epoch)
        if spec.wal is not None and not self.read_only:
            wal = session.attach_wal(spec.wal)
            if policy.replay_on_open:
                rstats = replay(session, wal)
        elif spec.wal is not None and os.path.exists(spec.wal):
            if policy.replay_on_open:
                # Reader side: never repair -- a "torn tail" here may be
                # a record the writer is mid-append on.
                rstats = replay(session, spec.wal, repair=False)
        result = OpenResult(
            dataset=spec.key,
            n=session.dataset.n,
            epoch=session.epoch,
            restored_from_bundle=restored,
            replayed=rstats.applied,
            replay_skipped=rstats.skipped,
            replay_appended=rstats.appended,
            replay_deleted=rstats.deleted,
            replay_truncated_bytes=rstats.truncated_bytes,
        )
        return session, dataset, result

    def _register(self, spec: DatasetSpec, session, dataset) -> None:
        with self._lock:
            self._specs[spec.key] = spec
            self._sessions[spec.key] = session
            self._baselines[spec.key] = dataset
            self._counters.setdefault(
                spec.key,
                {"queries": 0, "updates": 0, "checkpoints": 0, "compactions": 0},
            )
            self._health.setdefault(
                spec.key, {"state": "ok", "cause": None, "since": None}
            )
        self._pool.adopt(spec.key, session)

    def spec(self, key: str) -> DatasetSpec:
        with self._lock:
            if key not in self._specs:
                raise KeyError(f"unknown dataset {key!r}; open() it first")
            return self._specs[key]

    def session(self, key: str):
        """The underlying session (diagnostics; prefer the typed surface).

        Re-admits the session into the pool when budget pressure evicted
        it: eviction cleared the caches (they rebuild lazily), but the
        session object -- and any mutation it holds -- stays owned by
        the facade, so an open dataset can never become unqueryable or
        silently lose updates to a small budget.
        """
        with self._lock:
            session = self._sessions.get(key)
        if session is None:
            raise KeyError(f"unknown dataset {key!r}; open() it first")
        self._pool.adopt(key, session)
        return session

    def dataset(self, key: str) -> SpatialDataset:
        return self.session(key).dataset

    def keys(self) -> list:
        with self._lock:
            return list(self._specs)

    def aggregator(self, key: str, terms: Sequence[str]) -> CompositeAggregator:
        """The interned aggregator object of a term tuple (LRU-bounded).

        Requests phrasing the same terms share this object, which is
        what makes them hit every identity-keyed session cache.  The
        table keeps the ``aggregator_cache_size`` most recently used
        tuples; evicted ones are simply re-parsed (a cache miss, never
        a wrong answer), so client-controlled term variety cannot grow
        the server without bound.
        """
        terms = tuple(terms)
        with self._lock:
            aggregator = self._aggregators.get((key, terms))
            if aggregator is None:
                aggregator = CompositeAggregator([parse_term(t) for t in terms])
                self._aggregators[(key, terms)] = aggregator
                while len(self._aggregators) > self._aggregator_cache_size:
                    self._aggregators.popitem(last=False)
            else:
                self._aggregators.move_to_end((key, terms))
            return aggregator

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _asrs_query(self, request: QueryRequest) -> ASRSQuery:
        aggregator = self.aggregator(request.dataset, request.terms)
        weights = (
            None if request.weights is None else np.asarray(request.weights)
        )
        return ASRSQuery.from_vector(
            request.width,
            request.height,
            aggregator,
            np.asarray(request.target, dtype=np.float64),
            weights=weights,
            p=request.p,
        )

    def _count(self, key: str, what: str, by: int = 1) -> None:
        with self._lock:
            counters = self._counters.get(key)
            if counters is not None:
                counters[what] += by

    def query(self, request: QueryRequest) -> RegionResult:
        """Answer one query; ``topk`` must be 1 (see :meth:`query_topk`)."""
        if request.topk != 1:
            return self.query_topk(request)[0]
        t0 = time.perf_counter()
        session = self.session(request.dataset)
        q = self._asrs_query(request)
        out, epoch = session.solve_with_epoch(
            q,
            method=request.method,
            delta=request.delta,
            probe_cells=request.probe_cells,
            return_stats=request.include_stats,
        )
        result, stats = out if request.include_stats else (out, None)
        self._pool.reaccount(request.dataset)
        self._count(request.dataset, "queries")
        return RegionResult.from_engine(
            result,
            epoch=epoch,
            elapsed_s=time.perf_counter() - t0,
            stats=stats,
        )

    def query_topk(self, request: QueryRequest) -> list:
        """The exact top-k answers of one query (``request.topk`` regions)."""
        t0 = time.perf_counter()
        session = self.session(request.dataset)
        q = self._asrs_query(request)
        from ..dssearch.topk import ds_search_topk

        # ds_search_topk runs outside QuerySession.solve, so take the
        # shared update gate here: the search must not race a dataset
        # swap, and the epoch label must match what it actually ran on.
        with session._solve_gate():
            epoch = session.epoch
            results = ds_search_topk(
                session.dataset, q, request.topk, session.settings
            )
        self._count(request.dataset, "queries")
        elapsed = time.perf_counter() - t0
        return [
            RegionResult.from_engine(r, epoch=epoch, elapsed_s=elapsed)
            for r in results
        ]

    def query_batch(
        self, requests: Sequence[QueryRequest], *, workers: int | None = None
    ) -> list:
        """Answer a batch sharing every session cache (one dataset).

        All requests must target the same dataset and share the batch
        knobs (``method``/``delta``/``probe_cells``) --
        :meth:`QuerySession.solve_batch` applies them batch-wide.
        ``elapsed_s`` on each result is the amortized per-query wall
        clock of the whole batch.
        """
        requests = list(requests)
        if not requests:
            return []
        head = requests[0]
        for r in requests[1:]:
            if r.dataset != head.dataset:
                raise ValueError("query_batch requests must share one dataset")
            if (r.method, r.delta, r.probe_cells) != (
                head.method,
                head.delta,
                head.probe_cells,
            ):
                raise ValueError(
                    "query_batch requests must share method/delta/probe_cells"
                )
        t0 = time.perf_counter()
        session = self.session(head.dataset)
        queries = [self._asrs_query(r) for r in requests]

        # Same fan-out shape as QuerySession.solve_batch, but through
        # solve_with_epoch so every answer is labeled with the epoch it
        # was actually computed at (updates may interleave mid-batch).
        def one(q):
            return session.solve_with_epoch(
                q,
                method=head.method,
                delta=head.delta,
                probe_cells=head.probe_cells,
            )

        if workers is None or workers <= 1 or len(queries) <= 1:
            results = [one(q) for q in queries]
        else:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(
                max_workers=min(workers, len(queries))
            ) as ex:
                results = list(ex.map(one, queries))
        self._pool.reaccount(head.dataset)
        self._count(head.dataset, "queries", by=len(requests))
        elapsed = (time.perf_counter() - t0) / max(len(requests), 1)
        return [
            RegionResult.from_engine(r, epoch=epoch, elapsed_s=elapsed)
            for r, epoch in results
        ]

    def warm(self, requests: Sequence[QueryRequest]) -> int:
        """Precompute the target-independent artefacts of request shapes.

        Returns the number of distinct ``(terms, width, height)``
        shapes warmed (what ``repro index-build`` reports and
        persists).
        """
        shapes = set()
        for request in requests:
            session = self.session(request.dataset)
            session.warm_for(self._asrs_query(request))
            shapes.add((request.terms, request.width, request.height))
        return len(shapes)

    def maxrs(self, key: str, width: float, height: float) -> RegionResult:
        """The densest ``width x height`` region (MaxRS, paper §7.4)."""
        t0 = time.perf_counter()
        session = self.session(key)
        from ..dssearch.maxrs import max_rs_ds

        with session._solve_gate():
            epoch = session.epoch
            result = max_rs_ds(session.dataset, width, height)
        return RegionResult.from_engine(
            result, epoch=epoch, elapsed_s=time.perf_counter() - t0
        )

    # ------------------------------------------------------------------
    # Health (DESIGN.md §12: the degraded-mode state machine)
    # ------------------------------------------------------------------
    def _degrade(self, key: str, cause: str, *, state: str = "degraded") -> None:
        with self._lock:
            entry = self._health.setdefault(
                key, {"state": "ok", "cause": None, "since": None}
            )
            if entry["state"] == "failed" and state != "failed":
                return  # failed is sticky; a lesser fault never downgrades it
            entry["state"] = state
            entry["cause"] = cause
            entry["since"] = time.time()

    def _mark_ok(self, key: str) -> None:
        with self._lock:
            self._health[key] = {"state": "ok", "cause": None, "since": None}

    def _health_of(self, key: str) -> Dict[str, object]:
        with self._lock:
            return dict(
                self._health.get(key, {"state": "ok", "cause": None, "since": None})
            )

    def _require_available(self, key: str, verb: str, *, allow_degraded: bool = False) -> None:
        entry = self._health_of(key)
        state = str(entry["state"])
        if state == "ok" or (allow_degraded and state == "degraded"):
            return
        raise DatasetUnavailable(key, state, str(entry["cause"]), verb)

    def health(self) -> dict:
        """Per-dataset health plus the worst state across all of them."""
        with self._lock:
            datasets = {key: dict(entry) for key, entry in self._health.items()}
        states = {str(entry["state"]) for entry in datasets.values()}
        overall = (
            "failed"
            if "failed" in states
            else "degraded" if "degraded" in states else "ok"
        )
        return {"state": overall, "datasets": datasets}

    # ------------------------------------------------------------------
    # Mutation + durability
    # ------------------------------------------------------------------
    def _require_writer(self, what: str) -> None:
        if self.read_only:
            raise PermissionError(
                f"this RegionService is a read-only replica; {what} must go "
                "to the writer"
            )

    def _to_batch(self, request: UpdateRequest, schema):
        from ..engine.updates import UpdateBatch

        append: SpatialDataset | None = None
        if request.append_csv is not None:
            from ..data.io import load_csv

            append = load_csv(request.append_csv, schema)
        if request.append:
            inline = SpatialDataset.from_records(list(request.append), schema)
            append = inline if append is None else append.append(inline)
        delete = np.asarray(request.delete, dtype=np.int64) if request.delete else None
        return UpdateBatch(append=append, delete=delete)

    def update(self, request: UpdateRequest) -> UpdateResult:
        """Apply one mutation, then run the dataset's durability policy.

        Health gates and transitions (DESIGN.md §12): a degraded or
        failed dataset refuses mutations up front (queries still
        serve).  A WAL *append* failure degrades -- nothing applied,
        nothing acknowledged, the client may retry after repair.  A WAL
        *rollback* failure marks the dataset failed -- the log holds a
        record the session never applied.  A *policy* checkpoint or
        compaction failure after the update committed degrades but does
        NOT raise: the mutation is durable in the log, and an error
        here would make the client retry a committed batch into a
        double-apply; the result carries ``degraded=True`` instead.
        """
        self._require_writer("updates")
        self._require_available(request.dataset, "updates")
        t0 = time.perf_counter()
        key = request.dataset
        spec = self.spec(key)
        session = self.session(key)
        batch = self._to_batch(request, session.dataset.schema)
        try:
            stats = self._pool.apply(key, batch)
        except WalRollbackError as exc:
            self._degrade(key, str(exc), state="failed")
            raise DatasetUnavailable(key, "failed", str(exc), "this update") from exc
        except WalWriteError as exc:
            self._degrade(key, str(exc))
            raise DatasetUnavailable(key, "degraded", str(exc), "this update") from exc
        self._count(key, "updates")
        checkpointed = compacted = False
        degraded = False
        wal = session.wal
        if wal is not None and (stats.appended or stats.deleted):
            try:
                faults.failpoint(FP_UPDATE_PRE_POLICY)
                policy = spec.durability
                state = wal.state()
                if policy.checkpoint_due(state):
                    self.checkpoint(key)
                    checkpointed = True
                elif policy.compact_due(state):
                    self.compact(key)
                    compacted = True
            except Exception as exc:
                # The update itself committed (logged + applied);
                # checkpoint() / compact() already recorded the cause.
                self._degrade(key, f"{type(exc).__name__}: {exc}")
                degraded = True
        return UpdateResult(
            dataset=key,
            # stats.epoch was recorded inside the exclusive apply, so it
            # names this update's commit point even when another update
            # lands before we build the result.
            epoch=stats.epoch,
            appended=stats.appended,
            deleted=stats.deleted,
            wal_logged=stats.wal_logged,
            index_patched=stats.index_patched,
            dirty_cells=stats.dirty_cells,
            cell_entries_kept=stats.cell_entries_kept,
            checkpointed=checkpointed,
            compacted=compacted,
            degraded=degraded,
            elapsed_s=time.perf_counter() - t0,
        )

    def checkpoint(self, key: str) -> CheckpointResult:
        """Persist the (CSV, bundle) pair; truncate the write-ahead log.

        The CSV lands before the bundle: the bundle save checkpoints
        the log, destroying the records the saved state supersedes, so
        everything the checkpoint covers must be durable first.

        This is also the *repair* path for a degraded dataset -- a
        checkpoint that completes proves the full durability sequence
        works again, so success clears the degraded state.  A *failed*
        dataset refuses checkpoints: truncating around an unapplied
        orphan record would enshrine it for the next replay.
        """
        self._require_writer("checkpoints")
        self._require_available(key, "checkpoints", allow_degraded=True)
        spec = self.spec(key)
        session = self.session(key)
        if spec.data is None or spec.index is None:
            raise ValueError(
                f"dataset {key!r} cannot checkpoint: its DatasetSpec needs "
                "both data= (baseline CSV) and index= (bundle) paths"
            )
        from ..data.io import save_csv

        # The whole CSV -> bundle -> WAL-truncate sequence runs under the
        # session's exclusive gate: a concurrent update landing between
        # the CSV write and the bundle save would log a record the bundle
        # covers but the CSV does not -- the checkpoint would then
        # truncate the only durable copy of that update.
        try:
            with session._exclusive_gate():
                faults.failpoint(FP_CHECKPOINT_PRE_CSV)
                save_csv(session.dataset, spec.data)
                wal = session.wal
                before = wal.state()["records"] if wal is not None else 0
                faults.failpoint(FP_CHECKPOINT_PRE_BUNDLE)
                self._pool.save(key, spec.index, checkpoint_wal=True)
                after = wal.state()["records"] if wal is not None else 0
                with self._lock:
                    # The on-disk baseline now reflects the live session.
                    self._baselines[key] = session.dataset
        except Exception as exc:
            # Whatever broke, the WAL still holds every record the
            # bundle does not cover (truncation is the *last* step and
            # atomic) -- durability is intact, serving degrades.
            self._degrade(key, f"checkpoint failed: {type(exc).__name__}: {exc}")
            raise
        self._count(key, "checkpoints")
        self._mark_ok(key)
        return CheckpointResult(
            dataset=key,
            epoch=session.epoch,
            data_path=spec.data,
            index_path=spec.index,
            wal_records_dropped=before - after,
            n=session.dataset.n,
        )

    def compact(self, key: str) -> CompactResult:
        """Merge the dataset's WAL records into one equivalent batch.

        Runs under the session's exclusive update gate (no solve or
        update observes a half-rewritten log).  Epoch numbering is
        stable across compaction -- the merged record carries its span,
        the log head does not move, and the live session, its replicas
        and saved bundles keep their epochs.  Replaying the compacted
        log onto the checkpointed bundle yields answers
        bitwise-identical to the uncompacted replay -- and to a cold
        session on the final dataset.
        """
        self._require_writer("compaction")
        # Degraded allows compaction (log rewrite is atomic and cannot
        # lose records); failed does not -- a rewrite would relegitimize
        # the orphan record.  Success does not clear degraded: only a
        # full checkpoint proves the whole durability sequence again.
        self._require_available(key, "compaction", allow_degraded=True)
        session = self.session(key)
        wal = session.wal
        if wal is None:
            raise ValueError(f"dataset {key!r} has no write-ahead log to compact")
        try:
            with session._exclusive_gate():
                faults.failpoint(FP_COMPACT_PRE_REWRITE)
                cstats = wal.compact(session.dataset.schema)
        except Exception as exc:
            self._degrade(key, f"compaction failed: {type(exc).__name__}: {exc}")
            raise
        self._count(key, "compactions")
        return CompactResult(
            dataset=key,
            records_before=cstats.records_before,
            records_after=cstats.records_after,
            bytes_before=cstats.bytes_before,
            bytes_after=cstats.bytes_after,
            epoch=session.epoch,
        )

    def recover(self, key: str) -> ReplayStats:
        """Writer-side catch-up: replay the attached WAL to its head.

        For sessions opened with ``replay_on_open=False`` (the CLI does
        this to report recovery separately from restore errors): torn
        tails are repaired, checkpoint gaps and lineage mismatches
        raise ``ValueError`` -- exactly :func:`repro.engine.wal.replay`
        semantics.
        """
        self._require_writer("recovery")
        session = self.session(key)
        if session.wal is None:
            self._mark_ok(key)
            return ReplayStats(final_epoch=session.epoch)
        # recover() is the one repair a *failed* dataset accepts: replay
        # applies any orphaned record, after which log and session agree
        # again (the failed batch is thereby resurrected -- the log is
        # the authority once rollback has failed; DESIGN.md §12).
        stats = replay(session, session.wal)
        self._pool.reaccount(key)
        self._mark_ok(key)
        return stats

    def refresh(self, key: str) -> ReplayStats:
        """Read-only replica tick: replay what the writer logged since.

        Never repairs the log (the "torn tail" may be a record the
        writer is mid-append on).  When the writer checkpointed or
        compacted *past* this replica's epoch -- replay then fails
        closed -- the replica reopens from the freshly persisted
        (CSV, bundle) pair and replays from there.
        """
        spec = self.spec(key)
        session = self.session(key)
        if spec.wal is None or not os.path.exists(spec.wal):
            return ReplayStats(final_epoch=session.epoch)
        # Idle ticks are O(1): when the log file has not changed since
        # the last successful tick (and the session has not moved), a
        # replay would re-scan and CRC the whole log just to skip
        # everything -- per-poll cost growing with log size for nothing.
        stat = os.stat(spec.wal)
        mark = (stat.st_size, stat.st_mtime_ns, session.epoch)
        with self._lock:
            if self._wal_marks.get(key) == mark:
                return ReplayStats(final_epoch=session.epoch)
        try:
            stats = replay(session, spec.wal, repair=False)
        except ValueError:
            pass
        else:
            with self._lock:
                self._wal_marks[key] = (
                    stat.st_size,
                    stat.st_mtime_ns,
                    session.epoch,
                )
            self._pool.reaccount(key)
            return stats
        # The writer checkpointed (or compacted) past this replica:
        # reopen from the freshly persisted (CSV, bundle) pair.  The
        # replacement session is built fully out-of-band and swapped in
        # atomically, so concurrent queries keep being served by the
        # last-good session throughout the (potentially slow) rebuild --
        # and if the rebuild fails (e.g. the writer is mid-checkpoint
        # and the CSV on disk is momentarily newer than the bundle),
        # the exception propagates to the poller, nothing was touched,
        # and the next tick retries.
        faults.failpoint(FP_REFRESH_REOPEN)
        new_session, dataset, _ = self._build(spec, None)
        with self._lock:
            self._sessions[key] = new_session
            self._baselines[key] = dataset
            self._specs[key] = spec
            self._wal_marks.pop(key, None)
        self._pool.evict(key)
        self._pool.adopt(key, new_session)
        return ReplayStats(final_epoch=new_session.epoch)

    def persist(
        self,
        key: str,
        *,
        save_data: str | None = None,
        save_index: str | None = None,
    ) -> PersistResult:
        """The CLI save choreography (``--save-data`` / ``--save-index``).

        Encodes the ordering and WAL lifecycle rules DESIGN.md §10.3
        spells out: CSV before bundle; the log is checkpointed only
        when the *baseline* CSV reflects the logged state, reset when
        the baseline itself was overwritten with the mutated data (the
        new epoch-0 baseline), and kept untouched for side copies.
        """
        self._require_writer("persistence")
        self._require_available(key, "persistence", allow_degraded=True)
        faults.failpoint(FP_PERSIST_PRE_SAVE)
        spec = self.spec(key)
        session = self.session(key)
        wal = session.wal
        with self._lock:
            baseline = self._baselines.get(key)
        result_kwargs: dict = {
            "dataset": key,
            "epoch": session.epoch,
            "wal_path": None if wal is None else wal.path,
        }
        if save_data:
            from ..data.io import save_csv

            save_csv(session.dataset, save_data)
            result_kwargs["saved_data"] = save_data
            result_kwargs["data_n"] = session.dataset.n
        baseline_overwritten = (
            save_data is not None
            and spec.data is not None
            and os.path.abspath(save_data) == os.path.abspath(spec.data)
        )
        baseline_current = baseline_overwritten or session.dataset is baseline
        result_kwargs["baseline_current"] = baseline_current
        if save_index:
            self._pool.save(key, save_index, checkpoint_wal=baseline_current)
            result_kwargs["saved_index"] = save_index
            if wal is not None:
                result_kwargs["wal_action"] = (
                    "checkpointed" if baseline_current else "kept"
                )
        elif save_data and wal is not None:
            if baseline_overwritten:
                result_kwargs["wal_action"] = "reset"
                result_kwargs["wal_dropped"] = wal.reset()
            else:
                result_kwargs["wal_action"] = "side_copy"
        if baseline_overwritten:
            with self._lock:
                self._baselines[key] = session.dataset
        return PersistResult(**result_kwargs)

    # ------------------------------------------------------------------
    # Observability + lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Operational snapshot: per-dataset state + pool durability info."""
        pool_info = self._pool.info()
        health = self.health()
        with self._lock:
            entries = [
                (key, spec, self._sessions.get(key), dict(self._counters.get(key, {})))
                for key, spec in self._specs.items()
            ]
        datasets = {}
        for key, spec, session, entry in entries:
            entry["spec"] = spec.to_dict()
            entry["health"] = health["datasets"].get(
                key, {"state": "ok", "cause": None, "since": None}
            )
            # Durability state comes from the facade-held session, not
            # pool residency -- a budget-evicted session is still open.
            if session is not None:
                wal = session.wal
                entry.update(
                    {
                        "epoch": session.epoch,
                        "n": session.dataset.n,
                        "bundle_version": session.bundle_version,
                        "wal": None if wal is None else wal.state(),
                    }
                )
            datasets[key] = entry
        return {
            "read_only": self.read_only,
            "health": health["state"],
            "datasets": datasets,
            "pool": {k: v for k, v in pool_info.items() if k != "durability"},
        }

    def close(self) -> list:
        """Run the on-close durability policy; release log handles.

        Returns the :class:`CheckpointResult` s of any close-time
        checkpoints.  The service stays usable afterwards (handles
        reopen lazily); ``close`` is about durability, not teardown.
        """
        reports = []
        with self._lock:
            keys = list(self._specs)
        for key in keys:
            spec = self.spec(key)
            with self._lock:
                session = self._sessions.get(key)
            if session is None:
                continue
            wal = session.wal
            if wal is None:
                continue
            if (
                not self.read_only
                and spec.durability.checkpoint_on_close
                and spec.data is not None
                and spec.index is not None
                and wal.state()["records"] > 0
            ):
                try:
                    reports.append(self.checkpoint(key))
                except DatasetUnavailable:
                    # A failed dataset must not checkpoint around its
                    # orphan record; the log keeps everything, and the
                    # operator saw the state at /healthz.
                    pass
            wal.close()
        return reports

    def __enter__(self) -> "RegionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            keys = list(self._specs)
        return (
            f"RegionService(datasets={keys}, read_only={self.read_only}, "
            f"pool={self._pool!r})"
        )


# Runtime sanitizer (DESIGN.md §14): enforce the guarded-by
# declarations above when REPRO_SANITIZE=1.
sanitize_class(RegionService)
