"""A stdlib JSON-over-HTTP frontend for :class:`RegionService`.

``repro serve`` wires this up (DESIGN.md §11.5).  The protocol is the
typed codec verbatim -- request bodies are
``QueryRequest.to_dict()`` / ``UpdateRequest.to_dict()`` documents,
responses are ``RegionResult.to_dict()`` etc., so any JSON client
round-trips results bit-for-bit (non-finite floats ride as sentinel
strings):

=========  ======  ====================================================
path       method  body -> response
=========  ======  ====================================================
/query     POST    QueryRequest -> RegionResult (or {"results": [...]}
                   for ``topk`` > 1)
/update    POST    UpdateRequest -> UpdateResult (403 on a replica)
/checkpoint POST   {"dataset": key?} -> CheckpointResult
/compact   POST    {"dataset": key?} -> CompactResult
/healthz   GET     {"status": "ok", "read_only": ..., "datasets": ...}
/stats     GET     RegionService.stats()
=========  ======  ====================================================

``"dataset"`` may be omitted from any body when the service serves
exactly one dataset.  Errors come back as ``{"error": ...}`` with 400
(bad request), 403 (mutation on a read-only replica), 404 (unknown
path or dataset) or 500.

The server is a ``ThreadingHTTPServer``: each request runs on its own
thread against the thread-safe engine underneath (solves share warm
caches; updates drain solves via the session's update gate).  A
read-only replica additionally runs a :class:`WalFollower` thread that
polls the writer's WAL and replays new records -- the one-writer /
many-reader deployment the per-process GIL pushes toward.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .facade import RegionService
from .types import QueryRequest, UpdateRequest


class WalFollower(threading.Thread):
    """Poll-and-replay loop keeping a read-only replica caught up.

    Calls :meth:`RegionService.refresh` every ``interval`` seconds;
    replay itself serializes against in-flight queries via the
    session's update gate, so served answers are always a consistent
    epoch.  ``stop()`` ends the loop promptly.
    """

    def __init__(
        self, service: RegionService, key: str, interval: float = 1.0
    ) -> None:
        super().__init__(name=f"wal-follower-{key}", daemon=True)
        self.service = service
        self.key = key
        self.interval = float(interval)
        self.replayed = 0
        self.ticks = 0
        self.last_error: str | None = None
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                stats = self.service.refresh(self.key)
                self.replayed += stats.applied
                self.last_error = None
            except Exception as exc:  # keep following; surface via /healthz
                self.last_error = f"{type(exc).__name__}: {exc}"
            self.ticks += 1


class RegionServer(ThreadingHTTPServer):
    """The HTTP server; holds the service every handler dispatches to."""

    daemon_threads = True

    def __init__(
        self,
        address,
        service: RegionService,
        followers: list | None = None,
        quiet: bool = True,
    ) -> None:
        self.service = service
        self.followers = followers or []
        self.quiet = quiet
        super().__init__(address, _Handler)

    def shutdown(self) -> None:
        for follower in self.followers:
            follower.stop()
        super().shutdown()


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> RegionService:
        return self.server.service

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt, *args) -> None:
        if not getattr(self.server, "quiet", True):
            super().log_message(fmt, *args)

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, allow_nan=False).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        data = json.loads(raw.decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _default_dataset(self, body: dict) -> dict:
        if "dataset" not in body:
            keys = self.service.keys()
            if len(keys) == 1:
                body = dict(body, dataset=keys[0])
            else:
                raise KeyError(
                    "request names no 'dataset' and the service serves "
                    f"{len(keys)} -- pass one of {keys}"
                )
        return body

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/healthz":
                service = self.service
                datasets = {}
                for key in service.keys():
                    session = service.session(key)
                    datasets[key] = {"n": session.dataset.n, "epoch": session.epoch}
                payload = {
                    "status": "ok",
                    "read_only": service.read_only,
                    "datasets": datasets,
                }
                followers = getattr(self.server, "followers", [])
                if followers:
                    payload["follower"] = {
                        "ticks": sum(f.ticks for f in followers),
                        "replayed": sum(f.replayed for f in followers),
                        "last_error": next(
                            (f.last_error for f in followers if f.last_error),
                            None,
                        ),
                    }
                self._send(200, payload)
            elif self.path == "/stats":
                self._send(200, self.service.stats())
            else:
                self._send(404, {"error": f"unknown path {self.path!r}"})
        except Exception as exc:
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            body = self._default_dataset(self._body())
            if self.path == "/query":
                request = QueryRequest.from_dict(body)
                if request.topk > 1:
                    results = self.service.query_topk(request)
                    self._send(200, {"results": [r.to_dict() for r in results]})
                else:
                    self._send(200, self.service.query(request).to_dict())
            elif self.path == "/update":
                request = UpdateRequest.from_dict(body)
                self._send(200, self.service.update(request).to_dict())
            elif self.path == "/checkpoint":
                self._send(
                    200, self.service.checkpoint(body["dataset"]).to_dict()
                )
            elif self.path == "/compact":
                self._send(200, self.service.compact(body["dataset"]).to_dict())
            else:
                self._send(404, {"error": f"unknown path {self.path!r}"})
        except PermissionError as exc:
            self._send(403, {"error": str(exc)})
        except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
            self._send(400, {"error": f"{type(exc).__name__}: {exc}"})
        except Exception as exc:
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})


def make_server(
    service: RegionService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    followers: list | None = None,
    quiet: bool = True,
) -> RegionServer:
    """Build (but do not start) the HTTP server; ``port=0`` auto-picks."""
    return RegionServer((host, port), service, followers=followers, quiet=quiet)
