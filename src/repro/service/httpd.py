"""A stdlib JSON-over-HTTP frontend for :class:`RegionService`.

``repro serve`` wires this up (DESIGN.md §11.5).  The protocol is the
typed codec verbatim -- request bodies are
``QueryRequest.to_dict()`` / ``UpdateRequest.to_dict()`` documents,
responses are ``RegionResult.to_dict()`` etc., so any JSON client
round-trips results bit-for-bit (non-finite floats ride as sentinel
strings):

=========  ======  ====================================================
path       method  body -> response
=========  ======  ====================================================
/query     POST    QueryRequest -> RegionResult (or {"results": [...]}
                   for ``topk`` > 1)
/update    POST    UpdateRequest -> UpdateResult (403 on a replica,
                   503 on a degraded/failed dataset)
/checkpoint POST   {"dataset": key?} -> CheckpointResult
/compact   POST    {"dataset": key?} -> CompactResult
/recover   POST    {"dataset": key?} -> replay / restart report (WAL
                   replay stats, or the shard router's restart summary)
/healthz   GET     {"status": "ok"|"degraded", ...} -- HTTP 200 when
                   every dataset is healthy and the follower (if any)
                   is keeping up, 503 otherwise
/stats     GET     RegionService.stats()
=========  ======  ====================================================

``"dataset"`` may be omitted from any body when the service serves
exactly one dataset.  Errors come back as ``{"error": ...}`` with 400
(bad request), 403 (mutation on a read-only replica), 404 (unknown
path or dataset), 413 (body over ``max_body_bytes``), 503 (dataset
degraded/failed -- DESIGN.md §12) or 500.

The server is a ``ThreadingHTTPServer``: each request runs on its own
thread against the thread-safe engine underneath (solves share warm
caches; updates drain solves via the session's update gate).  Handler
threads are protected from hostile or stuck clients by a per-connection
socket timeout and a request-body size cap.  A read-only replica
additionally runs a :class:`WalFollower` thread that polls the writer's
WAL and replays new records -- the one-writer / many-reader deployment
the per-process GIL pushes toward.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .. import faults
from .facade import DatasetUnavailable, RegionService
from .types import QueryRequest, UpdateRequest, dumps

#: Fires at the top of every POST dispatch -- the outermost place a
#: request can die; the generic handler must turn it into a named 500,
#: never a hung or half-written response.
FP_REQUEST = faults.register("httpd.request")


class _PayloadTooLarge(ValueError):
    """Request body exceeds the server's ``max_body_bytes``."""


class WalFollower(threading.Thread):
    """Poll-and-replay loop keeping a read-only replica caught up.

    Calls :meth:`RegionService.refresh` every ``interval`` seconds;
    replay itself serializes against in-flight queries via the
    session's update gate, so served answers are always a consistent
    epoch.  Consecutive failures back off exponentially (doubling up to
    ``max_backoff``) so a broken writer path is not hammered, and the
    streak is surfaced: after ``DEGRADED_AFTER`` straight failures the
    follower reports itself degraded and ``/healthz`` turns 503.
    ``stop()`` ends the loop promptly.
    """

    #: Consecutive failed ticks before the follower counts as degraded.
    DEGRADED_AFTER = 3

    def __init__(
        self,
        service: RegionService,
        key: str,
        interval: float = 1.0,
        max_backoff: float = 30.0,
    ) -> None:
        super().__init__(name=f"wal-follower-{key}", daemon=True)
        self.service = service
        self.key = key
        self.interval = float(interval)
        self.max_backoff = float(max_backoff)
        self.replayed = 0
        self.ticks = 0
        self.error_streak = 0
        self.last_error: str | None = None
        self._stop = threading.Event()

    @property
    def degraded(self) -> bool:
        return self.error_streak >= self.DEGRADED_AFTER

    @property
    def delay(self) -> float:
        """Seconds until the next tick: base interval, backed off."""
        if self.error_streak == 0:
            return self.interval
        return min(
            self.max_backoff, self.interval * (2.0 ** min(self.error_streak, 16))
        )

    def stop(self) -> None:
        self._stop.set()

    def tick(self) -> None:
        """One poll: refresh, then update streak and error bookkeeping."""
        try:
            stats = self.service.refresh(self.key)
            self.replayed += stats.applied
            self.last_error = None
            self.error_streak = 0
        except Exception as exc:  # keep following; surface via /healthz
            self.last_error = f"{type(exc).__name__}: {exc}"
            self.error_streak += 1
        self.ticks += 1

    def run(self) -> None:
        while not self._stop.wait(self.delay):
            self.tick()


class RegionServer(ThreadingHTTPServer):
    """The HTTP server; holds the service every handler dispatches to."""

    daemon_threads = True

    def __init__(
        self,
        address,
        service: RegionService,
        followers: list | None = None,
        quiet: bool = True,
        max_body_bytes: int = 8 << 20,
        request_timeout: float = 30.0,
    ) -> None:
        self.service = service
        self.followers = followers or []
        self.quiet = quiet
        self.max_body_bytes = int(max_body_bytes)
        self.request_timeout = float(request_timeout)
        super().__init__(address, _Handler)

    def shutdown(self) -> None:
        for follower in self.followers:
            follower.stop()
        super().shutdown()


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> RegionService:
        return self.server.service

    # -- plumbing ------------------------------------------------------
    def setup(self) -> None:
        # Per-connection socket timeout: a client that stalls mid-body
        # (or never sends one) times out instead of pinning a handler
        # thread forever.  BaseHTTPRequestHandler honours self.timeout
        # via settimeout when set before setup() binds the rfile.
        self.timeout = getattr(self.server, "request_timeout", 30.0)
        super().setup()

    def log_message(self, fmt, *args) -> None:
        if not getattr(self.server, "quiet", True):
            super().log_message(fmt, *args)

    def _send(self, status: int, payload: dict, *, close: bool = False) -> None:
        body = dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if close:
            # Advertise the close: the client must not reuse a
            # connection we are about to drop.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        limit = getattr(self.server, "max_body_bytes", 8 << 20)
        if length > limit:
            raise _PayloadTooLarge(
                f"request body of {length} bytes exceeds the server's "
                f"{limit}-byte limit"
            )
        raw = self.rfile.read(length)
        data = json.loads(raw.decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _default_dataset(self, body: dict) -> dict:
        if "dataset" not in body:
            keys = self.service.keys()
            if len(keys) == 1:
                body = dict(body, dataset=keys[0])
            else:
                raise KeyError(
                    "request names no 'dataset' and the service serves "
                    f"{len(keys)} -- pass one of {keys}"
                )
        return body

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/healthz":
                service = self.service
                health = service.health()
                datasets = {}
                for key in service.keys():
                    session = service.session(key)
                    entry = health["datasets"].get(
                        key, {"state": "ok", "cause": None, "since": None}
                    )
                    datasets[key] = {
                        "n": session.dataset.n,
                        "epoch": session.epoch,
                        "state": entry["state"],
                        "cause": entry["cause"],
                    }
                followers = getattr(self.server, "followers", [])
                follower_degraded = any(f.degraded for f in followers)
                status = (
                    "ok"
                    if health["state"] == "ok" and not follower_degraded
                    else "degraded"
                )
                payload = {
                    "status": status,
                    "read_only": service.read_only,
                    "datasets": datasets,
                }
                if followers:
                    payload["follower"] = {
                        "ticks": sum(f.ticks for f in followers),
                        "replayed": sum(f.replayed for f in followers),
                        "error_streak": max(f.error_streak for f in followers),
                        "degraded": follower_degraded,
                        "last_error": next(
                            (f.last_error for f in followers if f.last_error),
                            None,
                        ),
                    }
                self._send(200 if status == "ok" else 503, payload)
            elif self.path == "/stats":
                self._send(200, self.service.stats())
            else:
                self._send(404, {"error": f"unknown path {self.path!r}"})
        except (socket.timeout, TimeoutError):
            self.close_connection = True
        except Exception as exc:
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            faults.failpoint(FP_REQUEST)
            body = self._default_dataset(self._body())
            if self.path == "/query":
                request = QueryRequest.from_dict(body)
                if request.topk > 1:
                    results = self.service.query_topk(request)
                    self._send(200, {"results": [r.to_dict() for r in results]})
                else:
                    self._send(200, self.service.query(request).to_dict())
            elif self.path == "/update":
                request = UpdateRequest.from_dict(body)
                self._send(200, self.service.update(request).to_dict())
            elif self.path == "/checkpoint":
                self._send(
                    200, self.service.checkpoint(body["dataset"]).to_dict()
                )
            elif self.path == "/compact":
                self._send(200, self.service.compact(body["dataset"]).to_dict())
            elif self.path == "/recover":
                # Facade: WAL replay ReplayStats; shard router: restart
                # report dict.  Both serialize as plain JSON objects.
                out = self.service.recover(body["dataset"])
                if dataclasses.is_dataclass(out):
                    out = dataclasses.asdict(out)
                self._send(200, out)
            else:
                self._send(404, {"error": f"unknown path {self.path!r}"})
        except (socket.timeout, TimeoutError):
            # The client stalled mid-read; nothing was applied (the
            # body never arrived).  Drop the connection -- there is no
            # point writing a response into a dead socket.
            self.close_connection = True
        except _PayloadTooLarge as exc:
            # Close after responding: the unread body is still in
            # flight, and keep-alive would misparse it as a request.
            self._send(413, {"error": str(exc)}, close=True)
        except DatasetUnavailable as exc:
            self._send(
                503,
                {
                    "error": str(exc),
                    "dataset": exc.dataset,
                    "state": exc.state,
                    "cause": exc.cause,
                },
            )
        except PermissionError as exc:
            self._send(403, {"error": str(exc)})
        except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
            self._send(400, {"error": f"{type(exc).__name__}: {exc}"})
        except Exception as exc:
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})


def make_server(
    service: RegionService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    followers: list | None = None,
    quiet: bool = True,
    max_body_bytes: int = 8 << 20,
    request_timeout: float = 30.0,
) -> RegionServer:
    """Build (but do not start) the HTTP server; ``port=0`` auto-picks."""
    return RegionServer(
        (host, port),
        service,
        followers=followers,
        quiet=quiet,
        max_body_bytes=max_body_bytes,
        request_timeout=request_timeout,
    )
