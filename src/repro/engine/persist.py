"""Disk persistence of :class:`~repro.engine.QuerySession` state.

A restarted server should not re-pay the cold build (DESIGN.md §8.3):
:func:`save_session` snapshots every *persistable* warm artefact of a
session -- the built :class:`~repro.index.GridIndex`, the channel
suffix tables, the ASP reductions with their GPS accuracies, and the
candidate-lattice intervals -- into a single compressed ``.npz`` bundle
whose ``meta`` member is a JSON document describing the payload;
:func:`load_session` restores them into a fresh session without
recomputation.

Identity-keyed caches cannot survive a process restart, so persisted
per-aggregator artefacts are keyed by the structural
:func:`~repro.engine.session.aggregator_signature` and adopted lazily
by the session when a matching aggregator first appears.  Artefacts
that are cheap to rebuild (compilers, bound contexts, empty
representations) or unboundedly large (the per-cell level-0 cache) are
deliberately not persisted.

Every saved array round-trips bit-for-bit through ``.npz``, so a
``load_session``-warmed session answers queries bitwise-identically to
the session that was saved -- and therefore to the cold paths.  The
bundle records a fingerprint (length + SHA-256 over coordinates and
attribute columns) of the dataset it was built over; loading against
any other dataset raises ``ValueError`` instead of silently answering
from the wrong index.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict

import numpy as np

from ..asp.rectset import RectSet
from ..core.objects import SpatialDataset
from ..dssearch.search import SearchSettings
from ..index.grid_index import GridIndex
from .session import QuerySession, aggregator_signature

#: Bump when the bundle layout changes.  v2 added the dataset epoch and
#: the index's pre-suffix cell sums (incremental updates); v1 bundles
#: are still read (epoch 0, index restored non-updatable).  Versions
#: newer than this build are refused with a targeted message.
FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)


def dataset_fingerprint(dataset: SpatialDataset) -> dict:
    """A content fingerprint binding a bundle to one dataset."""
    digest = hashlib.sha256()
    digest.update(dataset.xs.tobytes())
    digest.update(dataset.ys.tobytes())
    for name in dataset.schema.names:
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(dataset.column(name)).tobytes())
    return {
        "n": dataset.n,
        "sha256": digest.hexdigest(),
        "attributes": list(dataset.schema.names),
    }


def save_session(session: QuerySession, path) -> str:
    """Snapshot a session's warm state to an ``.npz``+JSON bundle.

    Saves exactly what is warm: call
    :meth:`~repro.engine.QuerySession.warm` (or solve representative
    queries) first -- ``repro index-build`` does precisely that.
    Returns the path written.
    """
    # Shallow-snapshot the cache dicts under the session's memo lock:
    # a session may be serving queries while it is saved, and _memo
    # inserts mid-iteration would otherwise blow up the save.  The
    # values themselves are immutable-once-stored, so copies of the
    # dicts are a consistent snapshot.  The dataset and epoch are
    # captured under the same acquisition: an incremental update swaps
    # dataset, epoch and caches in one memo-locked section
    # (engine/updates.py), so fingerprinting the captured dataset object
    # -- itself immutable -- keeps the bundle's fingerprint consistent
    # with the snapshotted caches even when a save races an update.
    with session._memo_lock:
        dataset = session.dataset
        epoch = session.epoch
        index = session._index
        reductions = dict(session._reductions)
        compilers = dict(session._compilers)
        tables_by_id = dict(session._tables)
        lattices_by_key = dict(session._lattices)
        pending_tables = dict(session._pending_tables)
        pending_lattices = dict(session._pending_lattices)

    meta: dict = {
        "format_version": FORMAT_VERSION,
        "granularity": list(session.granularity),
        "settings": asdict(session.settings),
        "fingerprint": dataset_fingerprint(dataset),
        "epoch": epoch,
        "reductions": [],
        "tables": [],
        "lattices": [],
    }
    arrays: dict = {}

    if index is not None:
        index_meta, index_arrays = index.snapshot()
        meta["index"] = index_meta
        for name, arr in index_arrays.items():
            arrays[f"index_{name}"] = arr

    for (width, height, anchor), (rects, accuracy) in reductions.items():
        j = len(meta["reductions"])
        meta["reductions"].append(
            {
                "width": width,
                "height": height,
                "anchor": anchor,
                "accuracy": list(accuracy),
            }
        )
        arrays[f"red_{j}"] = np.stack(
            [rects.x_min, rects.y_min, rects.x_max, rects.y_max]
        )

    # Per-aggregator artefacts: translate id-keys to structural
    # signatures.  Unsignaturable aggregators (custom terms, predicate
    # selections) are skipped; not-yet-adopted artefacts of a loaded
    # session (still signature-keyed) are carried over as-is.
    signature_of = {
        id(compiler): aggregator_signature(compiler.aggregator)
        for compiler in compilers.values()
    }

    tables: dict = {}
    for compiler_id, table in tables_by_id.items():
        signature = signature_of.get(compiler_id)
        if signature is not None:
            tables.setdefault(signature, table)
    for signature, table in pending_tables.items():
        tables.setdefault(signature, table)
    for signature, table in tables.items():
        j = len(meta["tables"])
        meta["tables"].append({"signature": signature})
        arrays[f"tab_{j}"] = table

    lattices: dict = {}
    for (width, height, compiler_id), lattice in lattices_by_key.items():
        signature = signature_of.get(compiler_id)
        if signature is not None:
            lattices.setdefault((width, height, signature), lattice)
    for key, lattice in pending_lattices.items():
        lattices.setdefault(key, lattice)
    for (width, height, signature), lattice in lattices.items():
        j = len(meta["lattices"])
        meta["lattices"].append(
            {"width": width, "height": height, "signature": signature}
        )
        for part, arr in zip(("x0", "y0", "lo", "hi"), lattice):
            arrays[f"lat_{j}_{part}"] = arr

    arrays["meta"] = np.array(json.dumps(meta))
    # Write-then-rename: a crash mid-save must not destroy the previous
    # good bundle a server's restart path depends on.  (Passing an open
    # file object also keeps np.savez from appending ".npz" to the
    # caller's path.)
    target = os.fspath(path)
    fd, tmp = tempfile.mkstemp(
        dir=os.path.dirname(os.path.abspath(target)) or ".",
        prefix=os.path.basename(target) + ".",
        suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target


def load_session(
    path,
    dataset: SpatialDataset,
    settings: SearchSettings | None = None,
) -> QuerySession:
    """Restore a session from a :func:`save_session` bundle.

    ``dataset`` must be the dataset the bundle was saved over (verified
    by fingerprint).  ``settings`` defaults to the saved settings; a
    caller override is honoured, but saved reductions are keyed by
    their anchor, so an override with a different anchor falls back to
    cold reductions (answers stay correct either way).
    """
    with np.load(path, allow_pickle=False) as bundle:
        if "meta" not in bundle.files:
            raise ValueError(
                f"{path!s} is not a session bundle (no 'meta' member); "
                "build one with `repro index-build`"
            )
        meta = json.loads(str(bundle["meta"][()]))
        version = meta.get("format_version")
        if version not in _READABLE_VERSIONS:
            raise ValueError(
                f"session bundle {path!s} has format version {version}; this "
                f"build reads versions {_READABLE_VERSIONS[0]}-"
                f"{_READABLE_VERSIONS[-1]}.  The bundle was written by a newer "
                "build -- upgrade, or rebuild it with `repro index-build`"
            )
        fingerprint = dataset_fingerprint(dataset)
        if fingerprint != meta["fingerprint"]:
            saved_epoch = meta.get("epoch", 0)
            raise ValueError(
                f"session bundle {path!s} was built over a different dataset "
                f"(saved n={meta['fingerprint']['n']} at epoch {saved_epoch}, "
                f"got n={fingerprint['n']}); the bundle is stale if the "
                "dataset has been mutated since -- re-save the live session "
                "or rebuild with `repro index-build`"
            )
        session = QuerySession(
            dataset,
            granularity=tuple(int(g) for g in meta["granularity"]),
            settings=settings or SearchSettings(**meta["settings"]),
        )
        # Resume the mutation counter where the saved session left off
        # (pre-v2 bundles predate epochs and resume at 0).
        session.epoch = int(meta.get("epoch", 0))
        if "index" in meta:
            index_arrays = {
                name[len("index_"):]: bundle[name]
                for name in bundle.files
                if name.startswith("index_")
            }
            session._index = GridIndex.restore(dataset, meta["index"], index_arrays)
        for j, entry in enumerate(meta["reductions"]):
            block = bundle[f"red_{j}"]
            key = (float(entry["width"]), float(entry["height"]), entry["anchor"])
            session._reductions[key] = (
                RectSet(block[0], block[1], block[2], block[3]),
                tuple(float(v) for v in entry["accuracy"]),
            )
        for j, entry in enumerate(meta["tables"]):
            session._pending_tables[entry["signature"]] = bundle[f"tab_{j}"]
        for j, entry in enumerate(meta["lattices"]):
            key = (float(entry["width"]), float(entry["height"]), entry["signature"])
            session._pending_lattices[key] = tuple(
                bundle[f"lat_{j}_{part}"] for part in ("x0", "y0", "lo", "hi")
            )
    return session
