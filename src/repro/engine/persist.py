"""Disk persistence of :class:`~repro.engine.QuerySession` state.

A restarted server should not re-pay the cold build (DESIGN.md §8.3):
:func:`save_session` snapshots every *persistable* warm artefact of a
session -- the built :class:`~repro.index.GridIndex`, the channel
suffix tables, the ASP reductions with their GPS accuracies, and the
candidate-lattice intervals -- into a single compressed ``.npz`` bundle
whose ``meta`` member is a JSON document describing the payload;
:func:`load_session` restores them into a fresh session without
recomputation.

Identity-keyed caches cannot survive a process restart, so persisted
per-aggregator artefacts are keyed by the structural
:func:`~repro.engine.session.aggregator_signature` and adopted lazily
by the session when a matching aggregator first appears.  Artefacts
that are cheap to rebuild (compilers, bound contexts, empty
representations) or unboundedly large (the per-cell level-0 cache) are
deliberately not persisted.

Every saved array round-trips bit-for-bit through ``.npz``, so a
``load_session``-warmed session answers queries bitwise-identically to
the session that was saved -- and therefore to the cold paths.  The
bundle records a fingerprint (length + SHA-256 over coordinates and
attribute columns) of the dataset it was built over; loading against
any other dataset raises ``ValueError`` instead of silently answering
from the wrong index.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

import numpy as np

from .. import faults
from ..asp.rectset import RectSet
from ..core.atomicio import replace_atomically
from ..core.objects import SpatialDataset
from ..dssearch.search import SearchSettings
from ..index.grid_index import GridIndex
from .session import QuerySession, aggregator_recipe, aggregator_signature

#: A fault at ``save`` must leave the previous bundle (and the WAL
#: records the new one would have truncated) intact; a fault at
#: ``restore`` must surface loudly -- never a half-restored session.
FP_SAVE = faults.register("persist.save")
FP_RESTORE = faults.register("persist.restore")

#: Bump when the bundle layout changes.  v2 added the dataset epoch and
#: the index's pre-suffix cell sums (incremental updates); v3 adds the
#: per-compiler channel-table cell sums and an aggregator rebuild
#: recipe per table, so a restored session accepts updates (and WAL
#: replay) without one cold channel-table rebuild; v4 adds the (full,
#: over) range sums next to each lattice, so a restored-but-not-yet-
#: adopted ("pending") lattice is *delta-patched* through updates and
#: replay instead of dropping to a full lazy recompute.  v1 bundles are
#: still read but the restored session refuses mutation (no cell sums
#: to patch); v2 bundles mutate with a lazy cold table recompute; v3
#: bundles mutate but re-derive lattices lazily.  Versions newer than
#: this build are refused with a targeted message.
FORMAT_VERSION = 4
_READABLE_VERSIONS = (1, 2, 3, 4)


def dataset_fingerprint(dataset: SpatialDataset) -> dict:
    """A content fingerprint binding a bundle to one dataset."""
    digest = hashlib.sha256()
    digest.update(dataset.xs.tobytes())
    digest.update(dataset.ys.tobytes())
    for name in dataset.schema.names:
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(dataset.column(name)).tobytes())
    return {
        "n": dataset.n,
        "sha256": digest.hexdigest(),
        "attributes": list(dataset.schema.names),
    }


def save_session(session: QuerySession, path, *, checkpoint_wal: bool = True) -> str:
    """Snapshot a session's warm state to an ``.npz``+JSON bundle.

    Saves exactly what is warm: call
    :meth:`~repro.engine.QuerySession.warm` (or solve representative
    queries) first -- ``repro index-build`` does precisely that.
    When the session has a write-ahead log attached, the log is
    checkpoint-truncated (records the new bundle covers are dropped)
    unless ``checkpoint_wal=False`` -- pass that when the *dataset*
    behind the bundle is not yet durably persisted alongside it, or
    the truncation destroys the only recoverable copy of the updates.
    Returns the path written.
    """
    # Shallow-snapshot the cache dicts under the session's memo lock:
    # a session may be serving queries while it is saved, and _memo
    # inserts mid-iteration would otherwise blow up the save.  The
    # values themselves are immutable-once-stored, so copies of the
    # dicts are a consistent snapshot.  The dataset and epoch are
    # captured under the same acquisition: an incremental update swaps
    # dataset, epoch and caches in one memo-locked section
    # (engine/updates.py), so fingerprinting the captured dataset object
    # -- itself immutable -- keeps the bundle's fingerprint consistent
    # with the snapshotted caches even when a save races an update.
    faults.failpoint(FP_SAVE)
    with session._memo_lock:
        dataset = session.dataset
        epoch = session.epoch
        index = session._index
        reductions = dict(session._reductions)
        compilers = dict(session._compilers)
        tables_by_id = dict(session._tables)
        table_cells_by_id = dict(session._table_cells)
        lattices_by_key = dict(session._lattices)
        lattice_sums_by_key = dict(session._lattice_sums)
        pending_tables = dict(session._pending_tables)
        pending_table_cells = dict(session._pending_table_cells)
        pending_recipes = dict(session._pending_recipes)
        pending_lattices = dict(session._pending_lattices)
        pending_lattice_sums = dict(session._pending_lattice_sums)

    meta: dict = {
        "format_version": FORMAT_VERSION,
        "granularity": list(session.granularity),
        "settings": asdict(session.settings),
        "fingerprint": dataset_fingerprint(dataset),
        "epoch": epoch,
        "reductions": [],
        "tables": [],
        "lattices": [],
    }
    arrays: dict = {}

    if index is not None:
        index_meta, index_arrays = index.snapshot()
        meta["index"] = index_meta
        for name, arr in index_arrays.items():
            arrays[f"index_{name}"] = arr

    for (width, height, anchor), (rects, accuracy) in reductions.items():
        j = len(meta["reductions"])
        meta["reductions"].append(
            {
                "width": width,
                "height": height,
                "anchor": anchor,
                "accuracy": list(accuracy),
            }
        )
        arrays[f"red_{j}"] = np.stack(
            [rects.x_min, rects.y_min, rects.x_max, rects.y_max]
        )

    # Per-aggregator artefacts: translate id-keys to structural
    # signatures.  Unsignaturable aggregators (custom terms, predicate
    # selections) are skipped; not-yet-adopted artefacts of a loaded
    # session (still signature-keyed) are carried over as-is.
    compiler_of = {id(compiler): compiler for compiler in compilers.values()}
    signature_of = {
        compiler_id: aggregator_signature(compiler.aggregator)
        for compiler_id, compiler in compiler_of.items()
    }

    # Each table travels with its pre-suffix cell sums (what updates
    # patch) and an aggregator rebuild recipe (format v3): a restored
    # session can then accept updates -- including a WAL replay --
    # before any live aggregator adopts the table, with no cold
    # channel-table rebuild.  Cells/recipe may individually be absent
    # (adopted from an older bundle, unrecipeable selection value);
    # the table still loads, updates just drop it to a lazy recompute.
    tables: dict = {}
    for compiler_id, table in tables_by_id.items():
        signature = signature_of.get(compiler_id)
        if signature is not None:
            tables.setdefault(
                signature,
                (
                    table,
                    table_cells_by_id.get(compiler_id),
                    aggregator_recipe(compiler_of[compiler_id].aggregator),
                ),
            )
    for signature, table in pending_tables.items():
        tables.setdefault(
            signature,
            (
                table,
                pending_table_cells.get(signature),
                pending_recipes.get(signature),
            ),
        )
    for signature, (table, cells, recipe) in tables.items():
        j = len(meta["tables"])
        meta["tables"].append(
            {
                "signature": signature,
                "has_cells": cells is not None,
                "recipe": recipe,
            }
        )
        arrays[f"tab_{j}"] = table
        if cells is not None:
            arrays[f"tabcells_{j}"] = cells

    # Each lattice travels with the (full, over) range sums it was
    # derived from (format v4): a restored pending lattice can then be
    # delta-patched through updates and WAL replay exactly like a live
    # one.  Sums may be absent (carried over from an older bundle);
    # the lattice still loads, updates just drop it to a lazy refresh.
    lattices: dict = {}
    for (width, height, compiler_id), lattice in lattices_by_key.items():
        signature = signature_of.get(compiler_id)
        if signature is not None:
            lattices.setdefault(
                (width, height, signature),
                (lattice, lattice_sums_by_key.get((width, height, compiler_id))),
            )
    for key, lattice in pending_lattices.items():
        lattices.setdefault(key, (lattice, pending_lattice_sums.get(key)))
    for (width, height, signature), (lattice, sums) in lattices.items():
        j = len(meta["lattices"])
        meta["lattices"].append(
            {
                "width": width,
                "height": height,
                "signature": signature,
                "has_sums": sums is not None,
            }
        )
        for part, arr in zip(("x0", "y0", "lo", "hi"), lattice):
            arrays[f"lat_{j}_{part}"] = arr
        if sums is not None:
            arrays[f"lat_{j}_full"], arrays[f"lat_{j}_over"] = sums

    # repro: ignore[RPL004] -- bundle 'meta' member inside the .npz binary
    # format; floats in it are never non-finite (sizes, epochs, accuracies)
    arrays["meta"] = np.array(json.dumps(meta))
    # Atomic + fsynced write-then-rename: a crash mid-save must not
    # destroy the previous good bundle a server's restart path depends
    # on, and the rename gates a WAL checkpoint that *destroys* the
    # records this bundle supersedes -- an un-fsynced rename could
    # commit before the data blocks on a power loss, leaving a corrupt
    # bundle and no log to rebuild it from.  (Writing through an open
    # file object also keeps np.savez from appending ".npz" to the
    # caller's path.)
    target = replace_atomically(
        path, lambda fh: np.savez_compressed(fh, **arrays)
    )
    # Checkpoint-and-truncate: the bundle now covers everything up to
    # the snapshotted epoch, so an attached write-ahead log can drop
    # those records -- the bundle+WAL pair stays small and replayable.
    # Updates racing this save append records at >= the snapshot epoch
    # and survive the checkpoint.
    wal = session.wal
    if wal is not None and checkpoint_wal:
        wal.checkpoint(epoch)
    return target


def load_session(
    path,
    dataset: SpatialDataset,
    settings: SearchSettings | None = None,
) -> QuerySession:
    """Restore a session from a :func:`save_session` bundle.

    ``dataset`` must be the dataset the bundle was saved over (verified
    by fingerprint).  ``settings`` defaults to the saved settings; a
    caller override is honoured, but saved reductions are keyed by
    their anchor, so an override with a different anchor falls back to
    cold reductions (answers stay correct either way).
    """
    faults.failpoint(FP_RESTORE)
    with np.load(path, allow_pickle=False) as bundle:
        if "meta" not in bundle.files:
            raise ValueError(
                f"{path!s} is not a session bundle (no 'meta' member); "
                "build one with `repro index-build`"
            )
        meta = json.loads(str(bundle["meta"][()]))
        version = meta.get("format_version")
        if version not in _READABLE_VERSIONS:
            raise ValueError(
                f"session bundle {path!s} has format version {version}; this "
                f"build reads versions {_READABLE_VERSIONS[0]}-"
                f"{_READABLE_VERSIONS[-1]}.  The bundle was written by a newer "
                "build -- upgrade, or rebuild it with `repro index-build`"
            )
        fingerprint = dataset_fingerprint(dataset)
        if fingerprint != meta["fingerprint"]:
            saved_epoch = meta.get("epoch", 0)
            raise ValueError(
                f"session bundle {path!s} was built over a different dataset "
                f"(saved n={meta['fingerprint']['n']} at epoch {saved_epoch}, "
                f"got n={fingerprint['n']}); the bundle is stale if the "
                "dataset has been mutated since -- re-save the live session "
                "or rebuild with `repro index-build`"
            )
        session = QuerySession(
            dataset,
            granularity=tuple(int(g) for g in meta["granularity"]),
            settings=settings or SearchSettings(**meta["settings"]),
        )
        # Resume the mutation counter where the saved session left off
        # (pre-v2 bundles predate epochs and resume at 0).
        session.epoch = int(meta.get("epoch", 0))
        if "index" in meta:
            index_arrays = {
                name[len("index_"):]: bundle[name]
                for name in bundle.files
                if name.startswith("index_")
            }
            session._index = GridIndex.restore(dataset, meta["index"], index_arrays)
            if session._index._categorical_cells is None:
                # Pre-v2 bundle: the restored index answers queries
                # identically but holds no cell sums to patch, so the
                # session refuses append/delete/apply with a targeted
                # error naming this version (engine/updates.py) instead
                # of proceeding on missing state.
                session._nonpatchable_restore = int(version)
        for j, entry in enumerate(meta["reductions"]):
            block = bundle[f"red_{j}"]
            key = (float(entry["width"]), float(entry["height"]), entry["anchor"])
            session._reductions[key] = (
                RectSet(block[0], block[1], block[2], block[3]),
                tuple(float(v) for v in entry["accuracy"]),
            )
        for j, entry in enumerate(meta["tables"]):
            signature = entry["signature"]
            session._pending_tables[signature] = bundle[f"tab_{j}"]
            if entry.get("has_cells") and f"tabcells_{j}" in bundle.files:
                session._pending_table_cells[signature] = bundle[f"tabcells_{j}"]
            if entry.get("recipe"):
                session._pending_recipes[signature] = entry["recipe"]
        for j, entry in enumerate(meta["lattices"]):
            key = (float(entry["width"]), float(entry["height"]), entry["signature"])
            session._pending_lattices[key] = tuple(
                bundle[f"lat_{j}_{part}"] for part in ("x0", "y0", "lo", "hi")
            )
            if entry.get("has_sums") and f"lat_{j}_full" in bundle.files:
                session._pending_lattice_sums[key] = (
                    bundle[f"lat_{j}_full"],
                    bundle[f"lat_{j}_over"],
                )
        session.bundle_version = int(version)
    return session
