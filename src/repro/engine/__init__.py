"""The zero-churn query engine (DESIGN.md §7-§8).

:class:`QuerySession` binds a dataset once, memoizes every
query-independent artefact (grid index, channel tables, compilers, ASP
reductions, bound contexts), and serves single queries (:meth:`solve`)
or batches (:meth:`solve_batch`, optionally on a thread pool) with
answers bitwise-identical to the cold
:func:`~repro.dssearch.ds_search` / :func:`~repro.index.gi_ds_search`
paths.  Sessions are thread-safe; :class:`SessionPool` manages one per
dataset under an LRU memory budget, and
:func:`save_session` / :func:`load_session` persist a session's warm
index state to disk so a restarted server skips the cold build.
Mutations (`apply`/`append`/`delete`) patch the warm state in place
and, with a :class:`WriteAheadLog` attached, are durably logged before
applying; :func:`replay` fast-forwards a restored bundle to the log
head after a crash (DESIGN.md §9-§10).
"""

from .persist import load_session, save_session
from .pool import SessionPool
from .session import QuerySession, aggregator_recipe, aggregator_signature
from .updates import UpdateBatch, UpdateStats
from .wal import (
    CompactStats,
    ReplayStats,
    WalRollbackError,
    WalWriteError,
    WriteAheadLog,
    replay,
)

__all__ = [
    "CompactStats",
    "QuerySession",
    "ReplayStats",
    "SessionPool",
    "UpdateBatch",
    "UpdateStats",
    "WalRollbackError",
    "WalWriteError",
    "WriteAheadLog",
    "aggregator_recipe",
    "aggregator_signature",
    "load_session",
    "replay",
    "save_session",
]
