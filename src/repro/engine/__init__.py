"""The zero-churn query engine (DESIGN.md §7).

:class:`QuerySession` binds a dataset once, memoizes every
query-independent artefact (grid index, channel tables, compilers, ASP
reductions, bound contexts), and serves single queries (:meth:`solve`)
or batches (:meth:`solve_batch`) with answers bitwise-identical to the
cold :func:`~repro.dssearch.ds_search` / :func:`~repro.index.gi_ds_search`
paths.
"""

from .session import QuerySession

__all__ = ["QuerySession"]
