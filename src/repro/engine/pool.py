"""Cross-dataset session management: the :class:`SessionPool`.

A server answering ASRS queries over many datasets wants one warm
:class:`~repro.engine.QuerySession` per dataset, but warm sessions hold
real memory (index tables, channel weights, lattice intervals, cached
cell states).  The pool bounds that (DESIGN.md §8.2): sessions are
kept in LRU order and, past the byte budget or session cap, the
least-recently-used ones are evicted -- eviction drops the session from
the pool *and* calls :meth:`~repro.engine.QuerySession.clear_caches`,
so memory is reclaimed even while a caller still holds the session
object.

The pool is thread-safe, and eviction is safe to race with in-flight
solves on the evicted session: a mid-solve ``clear_caches`` only forces
lazy recomputation, never a different answer (see
:meth:`QuerySession.clear_caches`).  The most-recently-used session is
never evicted, so the pool always serves the active dataset warm even
when one session alone exceeds the budget.
"""

from __future__ import annotations

import os
import warnings
from collections import OrderedDict
from typing import Hashable, Tuple

from ..analysis.sanitizer import make_rlock, sanitize_class
from ..core.objects import SpatialDataset
from ..dssearch.search import SearchSettings
from .session import QuerySession


class SessionPool:
    """Serves per-dataset :class:`QuerySession` s under a memory budget.

    Parameters
    ----------
    max_bytes:
        Budget over the summed :meth:`QuerySession.cache_nbytes` of all
        pooled sessions; ``None`` disables byte-based eviction.
    max_sessions:
        Hard cap on resident sessions; ``None`` disables it.
    granularity, settings:
        Defaults handed to sessions the pool creates (overridable per
        :meth:`session` call).
    """

    def __init__(
        self,
        max_bytes: int | None = None,
        max_sessions: int | None = None,
        granularity: Tuple[int, int] | str = "auto",
        settings: SearchSettings | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        if max_sessions is not None and max_sessions < 1:
            raise ValueError("max_sessions must be >= 1 (or None)")
        self.max_bytes = max_bytes
        self.max_sessions = max_sessions
        self._granularity = granularity
        self._settings = settings
        self._sessions: OrderedDict[Hashable, QuerySession] = OrderedDict()  # guarded-by: _lock
        # Cached cache_nbytes() per key: a full sweep of every resident
        # session's artefacts per solve would put O(total warm state)
        # on the hot path, so only the just-touched session is
        # re-measured and the rest reuse their last measurement.
        self._nbytes_cache: dict = {}  # guarded-by: _lock
        self._lock = make_rlock("SessionPool._lock")
        self._evictions = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    def session(
        self,
        key: Hashable,
        dataset: SpatialDataset | None = None,
        *,
        granularity: Tuple[int, int] | str | None = None,
        settings: SearchSettings | None = None,
        index_path=None,
        wal=None,
        replay_wal: bool = False,
    ) -> QuerySession:
        """The session registered under ``key``, creating it on first use.

        ``dataset`` is required the first time a key is seen (otherwise
        ``KeyError``); later calls may omit it.  ``index_path`` warms a
        newly created session from a
        :func:`~repro.engine.persist.save_session` bundle instead of
        starting cold.  ``wal`` (a path or
        :class:`~repro.engine.wal.WriteAheadLog`) is attached to a
        newly created session so every mutation through the pool is
        durably logged; with ``replay_wal=True`` the log is replayed
        onto the fresh session first (crash recovery: stale bundle +
        log -> live state).  Every access marks the session most
        recently used.  The byte budget is re-measured by
        :meth:`solve` / :meth:`solve_batch`, not by this accessor --
        growth through solves made directly on the returned session
        object is only picked up at the next pool solve for its key, so
        route queries through the pool when the budget must track every
        one.
        """
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self._check_wal_matches(key, session, wal)
                self._sessions.move_to_end(key)
                return session
        if dataset is None:
            raise KeyError(f"unknown session key {key!r} and no dataset to bind")
        # Create (or restore from disk) outside the lock: load_session
        # fingerprints the whole dataset and inflates the bundle, and
        # other datasets' traffic must not stall behind that.  On a
        # creation race the first insert wins and the loser is dropped.
        if index_path is not None:
            from .persist import load_session

            created = load_session(
                index_path, dataset, settings=settings or self._settings
            )
        else:
            created = QuerySession(
                dataset,
                granularity=(
                    granularity if granularity is not None else self._granularity
                ),
                settings=settings or self._settings,
            )
        if wal is not None:
            attached = created.attach_wal(wal)
            if replay_wal:
                from .wal import replay

                replay(created, attached)
        with self._lock:
            session = self._sessions.setdefault(key, created)
            if session is not created:
                # Creation race: another thread's insert won.  Same
                # contract as the entry check -- a caller who asked for
                # durability must not silently get unlogged (or
                # elsewhere-logged) mutation.
                self._check_wal_matches(key, session, wal)
            self._sessions.move_to_end(key)
            self._enforce_budget(touched=key)
            return session

    @staticmethod
    def _check_wal_matches(key: Hashable, session: QuerySession, wal) -> None:
        """Reject a durability request the resident session cannot honor.

        Silently returning a WAL-less session (or one logging to a
        *different* file) would let a caller who asked for durability
        mutate without the log they expect to replay after a crash --
        and attaching mid-life would start a log missing the session's
        earlier history.
        """
        if wal is None:
            return
        if session.wal is None:
            raise ValueError(
                f"session {key!r} is already resident without a write-ahead "
                "log; evict it and recreate with wal=, or save a fresh "
                "bundle and attach via session.attach_wal so log and bundle "
                "share an epoch"
            )
        requested = os.path.abspath(getattr(wal, "path", None) or os.fspath(wal))
        if requested != os.path.abspath(session.wal.path):
            raise ValueError(
                f"session {key!r} is already logging to "
                f"{session.wal.path!r}, not the requested {requested!r}; "
                "evict it first to switch logs"
            )

    def adopt(self, key: Hashable, session: QuerySession) -> QuerySession:
        """Register an externally built session under ``key``.

        For callers whose construction choreography the pool cannot
        express -- :class:`repro.service.RegionService` restores a
        bundle, attaches (or deliberately does not attach) a write-ahead
        log and replays it with custom repair semantics before the
        session ever serves traffic.  If ``key`` is already resident, a
        *different* session object is refused (silently replacing a
        live session would orphan its mutations), while adopting the
        resident object is a no-op touch.  Returns the resident session.
        """
        with self._lock:
            resident = self._sessions.setdefault(key, session)
            if resident is not session:
                raise ValueError(
                    f"session key {key!r} is already resident with a "
                    "different session; evict it first"
                )
            self._sessions.move_to_end(key)
            self._enforce_budget(touched=key)
            return resident

    def reaccount(self, key: Hashable) -> None:
        """Re-measure one session's bytes and re-enforce the budget.

        Call after growing a session's caches outside the pool (e.g.
        solving directly on the object :meth:`session` returned) so the
        byte budget tracks the growth.  Unknown keys are a no-op.
        """
        with self._lock:
            self._enforce_budget(touched=key)

    def solve(self, key: Hashable, query, dataset=None, **kwargs):
        """Deprecated: solve one query on the keyed session.

        .. deprecated::
            The kwargs pass-through serving surface moved to the typed
            facade -- route queries through
            :meth:`repro.service.RegionService.query`, or call
            ``session(key).solve(...)`` followed by
            :meth:`reaccount`.  Kept as a thin shim so existing callers
            keep working; behavior is unchanged (budget re-checked
            after the solve).
        """
        warnings.warn(
            "SessionPool.solve is deprecated; route queries through "
            "repro.service.RegionService.query, or use "
            "pool.session(key).solve(...) + pool.reaccount(key)",
            DeprecationWarning,
            stacklevel=2,
        )
        result = self.session(key, dataset).solve(query, **kwargs)
        self.reaccount(key)
        return result

    def solve_batch(self, key: Hashable, queries, dataset=None, **kwargs) -> list:
        """Deprecated batch counterpart of :meth:`solve` (same shim)."""
        warnings.warn(
            "SessionPool.solve_batch is deprecated; route queries through "
            "repro.service.RegionService.query_batch, or use "
            "pool.session(key).solve_batch(...) + pool.reaccount(key)",
            DeprecationWarning,
            stacklevel=2,
        )
        results = self.session(key, dataset).solve_batch(queries, **kwargs)
        self.reaccount(key)
        return results

    def apply(self, key: Hashable, batch, dataset=None):
        """Mutate the keyed session via :meth:`QuerySession.apply`.

        Re-accounts the session's ``cache_nbytes()`` afterwards -- an
        update both grows state (appended rows widen every weight
        matrix) and shrinks it (dropped lattice intervals, invalidated
        cell entries), so the budget must be re-measured either way.
        """
        session = self.session(key, dataset)
        stats = session.apply(batch)
        with self._lock:
            # Re-admit if another key's traffic evicted this session
            # while the (potentially slow, solve-draining) apply ran:
            # the mutated dataset lives only in this session object, so
            # dropping it here would silently lose the committed
            # mutation.  setdefault keeps a racing fresh insert if one
            # beat us (it would have been built from the caller's
            # dataset -- the un-mutated copy -- so prefer ours).
            resident = self._sessions.setdefault(key, session)
            if resident is not session:
                self._sessions[key] = session
            self._sessions.move_to_end(key)
            # Unconditionally invalidate the cached measurement: a
            # mutation changes the footprint even when no byte budget is
            # set (where _enforce_budget would never re-measure).
            self._nbytes_cache.pop(key, None)
            self._enforce_budget(touched=key)
        return stats

    def append(self, key: Hashable, objects, dataset=None):
        """:meth:`apply` with an append-only batch."""
        from .updates import UpdateBatch

        return self.apply(key, UpdateBatch(append=objects), dataset)

    def delete(self, key: Hashable, mask_or_indices, dataset=None):
        """:meth:`apply` with a delete-only batch."""
        from .updates import UpdateBatch

        return self.apply(key, UpdateBatch(delete=mask_or_indices), dataset)

    def save(self, key: Hashable, path, *, checkpoint_wal: bool = True) -> str:
        """Persist the keyed session's bundle (checkpointing its WAL).

        Wraps :func:`~repro.engine.persist.save_session`: the bundle is
        written atomically (tmp + rename) and, when the session has a
        write-ahead log attached, the log is checkpoint-truncated --
        records the new bundle covers are dropped, so the bundle + WAL
        pair a restarted server replays from stays minimal.  Pass
        ``checkpoint_wal=False`` when the session's *dataset* is not
        durably persisted alongside the bundle (the pool has no dataset
        store of its own): a bundle fingerprints a dataset recovery must
        re-supply, and truncating the log before that dataset is on disk
        destroys the only recoverable copy of the updates.  Returns the
        path written.
        """
        with self._lock:
            session = self._sessions.get(key)
            if session is None:
                raise KeyError(f"unknown session key {key!r}")
            self._sessions.move_to_end(key)
        from .persist import save_session

        return save_session(session, path, checkpoint_wal=checkpoint_wal)

    # ------------------------------------------------------------------
    def _enforce_budget(self, touched: Hashable | None = None) -> None:  # guarded-by: _lock
        """Evict LRU sessions past the caps (callers hold ``_lock``).

        ``touched`` names the session whose caches may just have grown;
        it alone is re-measured, the others reuse cached measurements
        (sessions only grow through pool calls, so staleness is bounded
        by one solve).  The most-recently-used session survives even
        when it alone exceeds ``max_bytes``: evicting it would just
        force the active dataset to re-warm on the very next query.
        """
        if self.max_sessions is not None:
            while len(self._sessions) > self.max_sessions:
                self._evict_lru()
        if self.max_bytes is None:
            return
        if touched is not None and touched in self._sessions:
            self._nbytes_cache[touched] = self._sessions[touched].cache_nbytes()
        total = 0
        for key, session in self._sessions.items():
            size = self._nbytes_cache.get(key)
            if size is None:
                size = self._nbytes_cache[key] = session.cache_nbytes()
            total += size
        while len(self._sessions) > 1 and total > self.max_bytes:
            total -= self._evict_lru()

    def _evict_lru(self) -> int:  # guarded-by: _lock
        """Evict the LRU session; returns its last measured byte count."""
        key, session = self._sessions.popitem(last=False)
        freed = self._nbytes_cache.pop(key, 0)
        session.clear_caches()
        self._evictions += 1
        return freed

    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Summed cache bytes of all resident sessions (exact re-measure)."""
        with self._lock:
            total = 0
            for key, session in self._sessions.items():
                size = session.cache_nbytes()
                self._nbytes_cache[key] = size
                total += size
            return total

    def evict(self, key: Hashable) -> bool:
        """Explicitly evict one session; returns whether it was resident."""
        with self._lock:
            session = self._sessions.pop(key, None)
            self._nbytes_cache.pop(key, None)
            if session is not None:
                self._evictions += 1
        if session is None:
            return False
        session.clear_caches()
        self._remeasure_if_resident(key, session)
        return True

    def clear(self) -> None:
        """Evict everything."""
        with self._lock:
            evicted = list(self._sessions.items())
            self._sessions.clear()
            self._nbytes_cache.clear()
            self._evictions += len(evicted)
        for key, session in evicted:
            session.clear_caches()
            self._remeasure_if_resident(key, session)

    def _remeasure_if_resident(self, key: Hashable, session: QuerySession) -> None:
        """Refresh a just-cleared session's measurement if it raced back in.

        ``clear_caches`` runs outside the pool lock, so it can interleave
        with :meth:`apply`'s re-admission of the same session object (or
        a concurrent solve re-growing its caches): the measurement taken
        at re-admission then describes the pre-clear footprint and would
        be served stale by every later budget pass.  Re-measure under
        the lock, but only while the entry still maps to this session --
        a fresh session created under the same key measures itself.
        """
        with self._lock:
            if self._sessions.get(key) is session:
                self._nbytes_cache[key] = session.cache_nbytes()

    def info(self) -> dict:
        """Occupancy snapshot (for tests and diagnostics).

        ``bytes`` reports the cached per-session measurements (sessions
        never measured yet are measured once here); call
        :meth:`nbytes` for an exact full re-measure -- ``info`` stays
        cheap so logging/``repr`` cannot stall query traffic with a
        sweep over every resident session's artefacts.
        """
        with self._lock:
            total = 0
            durability = {}
            for key, session in self._sessions.items():
                size = self._nbytes_cache.get(key)
                if size is None:
                    size = self._nbytes_cache[key] = session.cache_nbytes()
                total += size
                # Per-dataset durability state so operators (and the
                # service /stats endpoint) can see replication lag:
                # which sessions log where, how many records a restart
                # would replay, and what bundle vintage they restored
                # from.  WriteAheadLog.state() is O(1) after its first
                # scan, so this stays repr-cheap.
                wal = session.wal
                durability[key] = {
                    "epoch": session.epoch,
                    "n": session.dataset.n,
                    "bundle_version": session.bundle_version,
                    "wal": None if wal is None else wal.state(),
                }
            return {
                "sessions": len(self._sessions),
                "keys": list(self._sessions),
                "bytes": total,
                "evictions": self._evictions,
                "max_bytes": self.max_bytes,
                "max_sessions": self.max_sessions,
                "durability": durability,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._sessions

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"SessionPool(sessions={info['sessions']}, "
            f"bytes={info['bytes']}, evictions={info['evictions']})"
        )


# Runtime sanitizer (DESIGN.md §14): enforce the guarded-by
# declarations above when REPRO_SANITIZE=1.
sanitize_class(SessionPool)
