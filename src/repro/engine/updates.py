"""Incremental dataset updates for :class:`~repro.engine.QuerySession`.

Real deployments see objects arrive and expire continuously; rebuilding
the grid index, channel suffix tables and lattice intervals per change
throws away everything a session memoizes.  This module implements the
mutation path (DESIGN.md §9): :func:`apply_update` takes an
:class:`UpdateBatch` (rows to append and/or delete), derives the mutated
dataset, and *surgically* patches the session's warm artefacts so that
every subsequent answer is **bitwise-identical** to a cold
:class:`~repro.engine.QuerySession` built on the final dataset at the
same granularity and settings -- while re-deriving only what the update
actually touched:

* the :class:`~repro.index.GridIndex` is patched per dirty cell
  (:meth:`GridIndex.updated`); a bounds-changing update falls back to a
  lazy cold rebuild (still correct, no longer sublinear);
* cached :class:`~repro.core.channels.ChannelCompiler` s are row-remapped
  (kept rows gathered, appended rows compiled alone);
* channel suffix tables are re-summed only at dirty cells from the
  retained pre-suffix cell sums;
* ASP reductions are row-patched and their GPS accuracies recomputed;
* candidate-lattice intervals are *delta-patched* (DESIGN.md §10.4):
  only positions whose Lemma-8 cell range saw a dirty cell get their
  range sums and bounds recomputed, the rest keep bitwise-identical
  cached values -- falling back to a full lazy refresh when the index
  geometry shifts or the compiler's bound context moves;
* signature-keyed pending artefacts restored from a v3 bundle are
  patched through recipe-reconstructed compilers, so a replayed restore
  never pays a cold channel-table rebuild;
* per-cell level-0 accumulations survive unless a changed rectangle
  overlaps their cell (deletes renumber the surviving active indices).

When a :class:`~repro.engine.wal.WriteAheadLog` is attached to the
session, every effective batch is durably logged before any state
mutates, so a crashed server replays instead of rebuilding.

Bitwise fidelity rests on one property: every per-cell float sum is
accumulated over member rows in ascending row order, and updates
preserve each clean cell's member sequence exactly (appends land at the
end of the dataset; deletes preserve relative order).

Concurrency: the session's update gate makes :func:`apply_update`
exclusive with ``solve``/``solve_batch``/``warm`` -- an update waits for
in-flight solves to drain and blocks new ones, so a solve observes
either the pre- or the post-update session, never a mix.  The PR-2
in-flight-deduplication and pinning semantics of the caches are
untouched (the swap happens under the memo lock, with no solves live).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import faults
from ..asp.rectset import RectSet
from ..asp.reduction import reduce_to_asp
from ..core.aggregators import AverageAggregator
from ..core.channels import BoundContext, ChannelCompiler
from ..core.objects import SpatialDataset
from ..dssearch.drop import gps_accuracy
from ..index.summary import cell_sums_to_suffix_table, range_sums
from .wal import WalRollbackError, WalWriteError

#: Fires between the durable WAL append and the in-memory apply: a
#: crash here is the canonical logged-but-unapplied state replay must
#: resurrect; a raise here exercises the rollback path.
FP_POST_LOG = faults.register("update.post-log")


@dataclass(frozen=True)
class UpdateBatch:
    """One batched mutation: delete current rows, then append new ones.

    ``delete`` selects rows of the dataset *as it is when the batch is
    applied* (boolean mask or index array); ``append`` is a
    :class:`SpatialDataset` sharing the session's schema, or a sequence
    of ``(x, y, {attr: value})`` records.  Deletions are applied first,
    appends land at the end of the surviving rows.
    """

    append: object | None = None
    delete: object | None = None

    def append_dataset(self, schema) -> SpatialDataset | None:
        """The append payload as an encoded dataset (or ``None``)."""
        if self.append is None:
            return None
        if isinstance(self.append, SpatialDataset):
            return self.append
        return SpatialDataset.from_records(list(self.append), schema)


@dataclass
class UpdateStats:
    """What one :func:`apply_update` call did (tests, benches, logging)."""

    appended: int = 0
    deleted: int = 0
    epoch: int = 0
    index_patched: bool = False
    dirty_cells: int = 0
    tables_patched: int = 0
    tables_dropped: int = 0
    pending_tables_patched: int = 0
    pending_tables_dropped: int = 0
    reductions_patched: int = 0
    lattices_patched: int = 0
    lattices_dropped: int = 0
    pending_lattices_patched: int = 0
    pending_lattices_dropped: int = 0
    lattice_positions_refreshed: int = 0
    cell_entries_kept: int = 0
    cell_entries_dropped: int = 0
    wal_logged: bool = False


def apply_update(
    session,
    batch: UpdateBatch,
    *,
    log: bool = True,
    delta_lattice: bool = True,
) -> UpdateStats:
    """Mutate a session's dataset in place, patching its warm state.

    Exclusive with solves via the session's update gate; see the module
    docstring for the contract.  When the session has a write-ahead log
    attached and ``log`` is true (the default), the batch is durably
    logged *before* any state mutates -- :func:`~repro.engine.wal.replay`
    passes ``log=False`` so re-applied records are not re-logged.
    ``delta_lattice=False`` forces the cached lattice intervals to drop
    (full lazy refresh) instead of being delta-patched; answers are
    bitwise-identical either way (benchmarks use it as the baseline).
    Returns an :class:`UpdateStats`.
    """
    with session._exclusive_gate():
        return _apply_exclusive(
            session, batch, log=log, delta_lattice=delta_lattice
        )


def _apply_exclusive(
    session, batch: UpdateBatch, *, log: bool, delta_lattice: bool
) -> UpdateStats:
    restored_version = getattr(session, "_nonpatchable_restore", None)
    if restored_version is not None:
        raise ValueError(
            "this session was restored from a format "
            f"v{restored_version} bundle, which carries no pre-suffix cell "
            "sums; it can serve queries but not accept append/delete/apply.  "
            "Rebuild the bundle with `repro index-build` (current format), "
            "or call clear_caches() to drop the restored index and rebuild "
            "from the dataset"
        )
    old_ds: SpatialDataset = session.dataset
    append_ds = batch.append_dataset(old_ds.schema)
    if append_ds is not None and append_ds.schema != old_ds.schema:
        raise ValueError("appended rows must share the session dataset's schema")

    if batch.delete is not None:
        keep_mask = old_ds.delete_mask(batch.delete)
        kept = np.flatnonzero(keep_mask)
    else:
        kept = np.arange(old_ds.n, dtype=np.int64)
    n_deleted = old_ds.n - kept.size
    n_appended = append_ds.n if append_ds is not None else 0
    stats = UpdateStats(appended=n_appended, deleted=n_deleted, epoch=session.epoch)
    if n_deleted == 0 and n_appended == 0:
        return stats  # no-op: nothing invalidated, epoch unchanged

    # Write-ahead: the effective batch is durably logged before any
    # session state changes.  A crash after this line replays the batch
    # from the log; a crash before it loses only an unacknowledged
    # request.  (The update gate serializes appends, so log order is
    # mutation order; no-ops above are never logged.)  If the apply
    # itself then *fails* -- nothing committed -- the record is rolled
    # back: an orphan at this epoch would be replayed in place of the
    # batch a retry successfully logs at the same epoch.
    wal = session.wal if log else None
    wal_token = None
    if wal is not None:
        try:
            wal_token = wal.append(
                UpdateBatch(append=append_ds, delete=batch.delete),
                epoch=session.epoch,
                pre_n=old_ds.n,
                schema=old_ds.schema,
            )
        except ValueError:
            raise  # epoch-lineage validation, not an I/O failure
        except Exception as exc:
            # Nothing applied, nothing acknowledged; the log truncated
            # itself back to the last good record.  Typed so the serving
            # layer can degrade the dataset instead of guessing.
            raise WalWriteError(
                f"WAL append failed at epoch {session.epoch}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        stats.wal_logged = True
    try:
        faults.failpoint(FP_POST_LOG)
        return _derive_and_swap(
            session, append_ds, kept, stats, delta_lattice=delta_lattice
        )
    except BaseException as primary:
        if wal is not None:
            try:
                wal.rollback(wal_token)
            except BaseException as exc:
                # The orphaned record is still in the log and a later
                # replay would wrongly apply it; only an explicit
                # recover (replay) makes log and session agree again.
                raise WalRollbackError(
                    "WAL rollback failed after the apply raised "
                    f"{type(primary).__name__}: {primary} -- the log now "
                    f"holds an unapplied record at epoch {session.epoch} "
                    f"(rollback error: {type(exc).__name__}: {exc})"
                ) from exc
            stats.wal_logged = False
        raise


def _derive_and_swap(
    session,
    append_ds: SpatialDataset | None,
    kept: np.ndarray,
    stats: UpdateStats,
    *,
    delta_lattice: bool,
) -> UpdateStats:
    old_ds: SpatialDataset = session.dataset
    n_deleted = stats.deleted
    n_appended = stats.appended
    survivors = old_ds if n_deleted == 0 else old_ds.subset(kept)
    new_ds = survivors if n_appended == 0 else survivors.append(append_ds)

    # ------------------------------------------------------------------
    # Derive every replacement artefact *before* the swap.  The update
    # gate excludes solves/warms, but not clear_caches (a SessionPool
    # evicting under memory pressure calls it from another key's
    # traffic), so the cache dicts are shallow-snapshotted under the
    # memo lock and the derivation works off the snapshot.  Racing an
    # eviction is then merely a missed reclamation: the swap below
    # re-installs patched artefacts, all deterministic for the new
    # dataset, and the pool re-measures on its next touch.
    # ------------------------------------------------------------------
    with session._memo_lock:
        old_compilers = dict(session._compilers)
        old_pins = dict(session._pins)
        old_tables = dict(session._tables)
        old_table_cells = dict(session._table_cells)
        old_contexts = dict(session._contexts)
        old_empty_reps = dict(session._empty_reps)
        old_reductions = dict(session._reductions)
        old_lattices = dict(session._lattices)
        old_lattice_sums = dict(session._lattice_sums)
        old_geometry = dict(session._lattice_geometry)
        old_cell_caches = dict(session._cells)
        old_pending_tables = dict(session._pending_tables)
        old_pending_cells = dict(session._pending_table_cells)
        old_pending_recipes = dict(session._pending_recipes)
        old_pending_lattices = dict(session._pending_lattices)
        old_pending_lattice_sums = dict(session._pending_lattice_sums)
    old_index = session._index
    new_index = None
    dirty_flat = members = local = None
    if old_index is not None and new_ds.n:
        patched = old_index.updated(new_ds, kept)
        if patched is not None:
            new_index, dirty_flat = patched
            members, local = new_index.dirty_members(dirty_flat)
            stats.index_patched = True
            stats.dirty_cells = int(dirty_flat.size)

    # Row-remap every cached compiler (same aggregator objects, so the
    # id-keyed aggregator caches keep their keys; compiler-keyed caches
    # are re-keyed to the new compiler ids below).
    new_compilers: dict = {}
    remap: dict = {}  # id(old compiler) -> new compiler
    for agg_id, old_comp in old_compilers.items():
        aggregator = old_pins[agg_id]
        app_comp = (
            ChannelCompiler(append_ds, aggregator) if n_appended else None
        )
        new_comp = old_comp.remapped(new_ds, kept, app_comp)
        new_compilers[agg_id] = new_comp
        remap[id(old_comp)] = new_comp

    # Channel tables: patch at dirty cells where the pre-suffix cell
    # sums were retained; anything unpatchable is dropped and lazily
    # recomputed cold (answers unaffected either way).
    new_tables: dict = {}
    new_table_cells: dict = {}
    for old_cid, _ in old_tables.items():
        new_comp = remap.get(old_cid)
        cells = old_table_cells.get(old_cid)
        if new_comp is None or new_index is None or cells is None:
            stats.tables_dropped += 1
            continue
        patched_cells = new_index.patch_cell_sums(
            cells, dirty_flat, local, new_comp.weights[members]
        )
        new_table_cells[id(new_comp)] = patched_cells
        new_tables[id(new_comp)] = cell_sums_to_suffix_table(patched_cells)
        stats.tables_patched += 1

    # Bound contexts and empty representations: cheap, recompute eagerly
    # for whatever was warm.
    new_contexts = {
        id(remap[cid]): remap[cid].make_context()
        for cid in old_contexts
        if cid in remap
    }
    new_empty_reps = {
        agg_id: old_pins[agg_id].empty_representation(new_ds)
        for agg_id in old_empty_reps
        if agg_id in old_pins
    }

    # ASP reductions: row-patch the rectangles (elementwise per object,
    # so gather+concat is bitwise the cold reduction) and recompute the
    # GPS accuracies over the full new set, exactly as cold would.
    new_reductions: dict = {}
    changed_rects: dict = {}  # (w, h, anchor) -> coords of changed rects
    deleted_mask = np.ones(old_ds.n, dtype=bool)
    deleted_mask[kept] = False
    for (width, height, anchor), (rects, _) in old_reductions.items():
        app_rects = (
            reduce_to_asp(append_ds, width, height, anchor)
            if n_appended
            else None
        )
        parts = lambda old, app: (  # noqa: E731 - local 4-column zipper
            np.concatenate([old[kept], app]) if app is not None else old[kept]
        )
        new_rects = RectSet(
            parts(rects.x_min, None if app_rects is None else app_rects.x_min),
            parts(rects.y_min, None if app_rects is None else app_rects.y_min),
            parts(rects.x_max, None if app_rects is None else app_rects.x_max),
            parts(rects.y_max, None if app_rects is None else app_rects.y_max),
        )
        new_reductions[(width, height, anchor)] = (
            new_rects,
            gps_accuracy(new_rects),
        )
        stats.reductions_patched += 1
        changed = [
            np.stack(
                [
                    rects.x_min[deleted_mask],
                    rects.y_min[deleted_mask],
                    rects.x_max[deleted_mask],
                    rects.y_max[deleted_mask],
                ]
            )
        ]
        if app_rects is not None:
            changed.append(
                np.stack(
                    [
                        app_rects.x_min,
                        app_rects.y_min,
                        app_rects.x_max,
                        app_rects.y_max,
                    ]
                )
            )
        changed_rects[(width, height, anchor)] = np.concatenate(changed, axis=1)

    # Disk-restored artefacts not yet adopted by a live aggregator
    # object (signature-keyed "pendings", DESIGN.md §10.3): patch them
    # too, or a replay onto a freshly loaded bundle would drop every
    # persisted channel table and pay the cold rebuild the v3 format
    # exists to avoid.  A pending whose signature matches a live
    # compiler simply aliases that compiler's patched artefacts; the
    # rest are patched through a compiler reconstructed from the
    # persisted recipe, compiled over *only* the dirty-cell member rows
    # (channel weights are per-row functions of the columns, so the
    # member-subset compile is bitwise the full compile's member rows).
    from .session import aggregator_from_recipe, aggregator_signature

    new_pending_tables: dict = {}
    new_pending_cells: dict = {}
    new_pending_recipes: dict = {}
    live_by_sig: dict = {}
    if old_pending_tables or old_pending_lattices:
        for new_comp in new_compilers.values():
            sig = aggregator_signature(new_comp.aggregator)
            if sig is not None:
                live_by_sig.setdefault(sig, new_comp)
    if old_pending_tables:
        members_ds = None
        for sig, _ in old_pending_tables.items():
            live = live_by_sig.get(sig)
            if live is not None and id(live) in new_tables:
                new_pending_tables[sig] = new_tables[id(live)]
                new_pending_cells[sig] = new_table_cells[id(live)]
                if sig in old_pending_recipes:
                    new_pending_recipes[sig] = old_pending_recipes[sig]
                continue
            cells = old_pending_cells.get(sig)
            recipe = old_pending_recipes.get(sig)
            if new_index is None or cells is None or recipe is None:
                stats.pending_tables_dropped += 1
                continue
            try:
                aggregator = aggregator_from_recipe(recipe)
                if members_ds is None:
                    members_ds = new_ds.subset(members)
                member_weights = ChannelCompiler(members_ds, aggregator).weights
            except (KeyError, ValueError, TypeError):
                # The recipe no longer matches the schema (attribute or
                # domain value gone): fall back to a lazy cold recompute.
                stats.pending_tables_dropped += 1
                continue
            patched_cells = new_index.patch_cell_sums(
                cells, dirty_flat, local, member_weights
            )
            new_pending_cells[sig] = patched_cells
            new_pending_tables[sig] = cell_sums_to_suffix_table(patched_cells)
            new_pending_recipes[sig] = recipe
            stats.pending_tables_patched += 1

    # Candidate lattices: their (full, over) channel range sums only
    # change at lattice positions whose Lemma-8 cell range has a dirty
    # cell in its corner quadrant (DESIGN.md §10.4); everything else is
    # bitwise what a recompute from the patched table would produce.
    # Patch those positions in place instead of recomputing O(lattice·C)
    # per update -- falling back to a full (lazy) refresh when the index
    # geometry shifted, the cached sums are missing (e.g. adopted from
    # disk), or the compiler's bound context moved (average-term bounds
    # depend on it at every position).
    new_lattices: dict = {}
    new_lattice_sums: dict = {}
    if delta_lattice and new_index is not None and old_lattices:
        changed_map = _changed_corner_map(new_index, dirty_flat)
        for (width, height, old_cid), lattice in old_lattices.items():
            new_comp = remap.get(old_cid)
            sums = old_lattice_sums.get((width, height, old_cid))
            geometry = old_geometry.get((width, height))
            old_ctx = old_contexts.get(old_cid)
            if (
                new_comp is None
                or sums is None
                or geometry is None
                or old_ctx is None
                or id(new_comp) not in new_tables
            ):
                stats.lattices_dropped += 1
                continue
            new_ctx = new_contexts[id(new_comp)]
            if old_ctx != new_ctx:
                stats.lattices_dropped += 1
                continue
            patched = _patch_lattice(
                lattice,
                sums,
                geometry,
                changed_map,
                new_tables[id(new_comp)],
                new_comp,
                new_ctx,
            )
            if patched is None:  # too many touched positions: not worth it
                stats.lattices_dropped += 1
                continue
            key = (width, height, id(new_comp))
            new_lattices[key], new_lattice_sums[key], refreshed = patched
            stats.lattices_patched += 1
            stats.lattice_positions_refreshed += refreshed
    else:
        stats.lattices_dropped = len(old_lattices)

    # Pending lattices restored from a v4 bundle but not yet adopted by
    # a live aggregator: patch them like live ones, or a WAL replay onto
    # a fresh restore would drop every persisted lattice to the full
    # lazy recompute the persisted range sums exist to avoid.  The
    # interval bounds are recomputed through a *structural* compiler
    # rebuilt from the persisted recipe (``bounds_from_sums`` reads only
    # the term layout, never the weights, so an empty-row compile is
    # bitwise the live one) against the already-patched pending table;
    # the bound-context gate compares extremes computed straight from
    # the recipe's selections over the old and new datasets, which is
    # bitwise ``ChannelCompiler.make_context`` on either side.
    new_pending_lattices: dict = {}
    new_pending_lattice_sums: dict = {}
    computed_geometry: dict = {}
    if delta_lattice and new_index is not None and old_pending_lattices:
        from ..index.gids import candidate_lattice_geometry

        changed_map = _changed_corner_map(new_index, dirty_flat)
        ctx_cache: dict = {}
        for (width, height, sig), lattice in old_pending_lattices.items():
            live = live_by_sig.get(sig)
            if live is not None:
                live_key = (width, height, id(live))
                if live_key in new_lattices:
                    # The live compiler's patched lattice IS this one.
                    key = (width, height, sig)
                    new_pending_lattices[key] = new_lattices[live_key]
                    new_pending_lattice_sums[key] = new_lattice_sums[live_key]
                    stats.pending_lattices_patched += 1
                    continue
            sums = old_pending_lattice_sums.get((width, height, sig))
            recipe = (
                new_pending_recipes.get(sig) or old_pending_recipes.get(sig)
            )
            table = new_pending_tables.get(sig)
            if sums is None or recipe is None or table is None:
                stats.pending_lattices_dropped += 1
                continue
            cached = ctx_cache.get(sig)
            if cached is None:
                try:
                    aggregator = aggregator_from_recipe(recipe)
                    old_ctx = _recipe_context(old_ds, aggregator)
                    new_ctx = _recipe_context(new_ds, aggregator)
                    stub = ChannelCompiler(
                        new_ds.subset(np.empty(0, dtype=np.int64)), aggregator
                    )
                except (KeyError, ValueError, TypeError):
                    cached = ctx_cache[sig] = (None, None, None)
                else:
                    cached = ctx_cache[sig] = (old_ctx, new_ctx, stub)
            old_ctx, new_ctx, stub = cached
            if stub is None or old_ctx != new_ctx:
                stats.pending_lattices_dropped += 1
                continue
            geometry = old_geometry.get((width, height)) or computed_geometry.get(
                (width, height)
            )
            if geometry is None:
                # Deterministic from the (geometry-preserving) patched
                # index, so computing it here is bitwise the cached one.
                geometry = computed_geometry[
                    (width, height)
                ] = candidate_lattice_geometry(new_index, width, height)
            patched = _patch_lattice(
                lattice, sums, geometry, changed_map, table, stub, new_ctx
            )
            if patched is None:
                stats.pending_lattices_dropped += 1
                continue
            key = (width, height, sig)
            new_pending_lattices[key], new_pending_lattice_sums[key], refreshed = (
                patched
            )
            stats.pending_lattices_patched += 1
            stats.lattice_positions_refreshed += refreshed
    else:
        stats.pending_lattices_dropped = len(old_pending_lattices)

    # Per-cell level-0 accumulations: keep entries no changed rectangle
    # overlaps (their active set, gathered coordinates and accumulation
    # are bitwise the cold ones); renumber active indices after deletes.
    new_cells: dict = {}
    if new_index is not None:
        new_of_old = np.full(old_ds.n, -1, dtype=np.int64)
        new_of_old[kept] = np.arange(kept.size, dtype=np.int64)
        anchor = session.settings.anchor
        for (width, height, old_cid), cache in old_cell_caches.items():
            new_comp = remap.get(old_cid)
            changed = changed_rects.get((width, height, anchor))
            if new_comp is None or changed is None:
                stats.cell_entries_dropped += len(cache)
                continue
            surviving = _surviving_cell_entries(
                new_index,
                width,
                height,
                cache,
                changed,
                new_of_old,
                renumber=n_deleted > 0,
            )
            stats.cell_entries_kept += len(surviving)
            stats.cell_entries_dropped += len(cache) - len(surviving)
            new_cells[(width, height, id(new_comp))] = surviving
    else:
        stats.cell_entries_dropped = sum(
            len(cache) for cache in old_cell_caches.values()
        )

    # ------------------------------------------------------------------
    # Swap, atomically w.r.t. everything that takes the memo lock
    # (save_session snapshots, clear_caches).
    # ------------------------------------------------------------------
    with session._memo_lock:
        session.dataset = new_ds
        session._index = new_index
        session._compilers = new_compilers
        session._tables = new_tables
        session._table_cells = new_table_cells
        session._contexts = new_contexts
        session._empty_reps = new_empty_reps
        session._reductions = new_reductions
        session._lattices = new_lattices
        session._lattice_sums = new_lattice_sums
        if new_index is None:
            # The index geometry may shift on a cold rebuild; the cached
            # lattice geometry is only valid while it is preserved.
            session._lattice_geometry = {}
        else:
            session._lattice_geometry.update(computed_geometry)
        session._cells = new_cells
        session._pending_tables = new_pending_tables
        session._pending_table_cells = new_pending_cells
        session._pending_recipes = new_pending_recipes
        session._pending_lattices = new_pending_lattices
        session._pending_lattice_sums = new_pending_lattice_sums
        session._pins = {
            agg_id: old_pins[agg_id]
            for agg_id in set(new_compilers) | set(new_empty_reps)
        }
        for new_comp in new_compilers.values():
            session._pins[id(new_comp)] = new_comp
        session.epoch += 1
        stats.epoch = session.epoch
    return stats


def _recipe_context(dataset: SpatialDataset, aggregator) -> BoundContext:
    """The full-dataset bound context of a recipe-rebuilt aggregator.

    Bitwise :meth:`ChannelCompiler.make_context` -- same raw column,
    same selection mask, same min/max -- but without compiling the
    weight matrix, so pending-lattice patching can gate on context
    movement at O(n) per average term instead of a full O(n·C) compile.
    """
    extremes: dict = {}
    for index, term in enumerate(aggregator.terms):
        if not isinstance(term, AverageAggregator):
            continue
        sel = term.selection.mask(dataset)
        chosen = dataset.column(term.attribute)[sel]
        if chosen.size:
            extremes[index] = (float(chosen.min()), float(chosen.max()))
    return BoundContext(extremes)


def _changed_corner_map(index, dirty_flat: np.ndarray) -> np.ndarray:
    """Boolean ``(sx+1, sy+1)`` map: suffix-table corners whose value moved.

    The suffix table ``T[i, j]`` sums cells ``i' >= i, j' >= j``, so a
    dirty cell at ``(di, dj)`` perturbs exactly the corners in its
    south-west quadrant ``i <= di, j <= dj`` -- a suffix-OR over the
    dirty mask.  A Lemma-8 range sum reads four corners of which
    ``(col_lo, row_lo)`` has the smallest indices; if *that* corner is
    unchanged, all four are, and the range sum recomputed from the new
    table is bitwise the cached one (same operand bits, same formula,
    and the suffix cumsum re-accumulates unchanged quadrants over
    identical values in identical order).
    """
    changed = np.zeros((index.sx + 1, index.sy + 1), dtype=bool)
    changed[dirty_flat // index.sy, dirty_flat % index.sy] = True
    changed[::-1] = np.logical_or.accumulate(changed[::-1], axis=0)
    changed[:, ::-1] = np.logical_or.accumulate(changed[:, ::-1], axis=1)
    return changed


#: Touched-position fraction above which a delta lattice refresh stops
#: paying for itself: the subset gathers + array copies then cost more
#: than the one vectorized full recompute the lazy path performs, so
#: the update drops the lattice instead.  Scattered bulk updates (dirty
#: cells all over the grid) land here; localized streams stay below it.
DELTA_LATTICE_MAX_TOUCHED = 0.5


def _patch_lattice(
    lattice: tuple,
    sums: tuple,
    geometry: tuple,
    changed_map: np.ndarray,
    table: np.ndarray,
    compiler: ChannelCompiler,
    ctx,
) -> tuple | None:
    """Delta-refresh one cached lattice: ``(intervals, sums, n_refreshed)``.

    Recomputes the (full, over) range sums and the derived interval
    bounds only at lattice positions whose cell-range corner moved
    (see :func:`_changed_corner_map`); every other position keeps values
    that are bitwise what a full recompute from ``table`` would yield.
    The bounds arithmetic (``bounds_from_sums``) is elementwise per
    position, so computing it on the touched subset and splicing is
    bitwise the full-lattice computation.  Returns ``None`` when too
    many positions are touched (:data:`DELTA_LATTICE_MAX_TOUCHED`) --
    the caller drops the lattice to the (equally bitwise-faithful)
    lazy full refresh instead of paying delta overhead for no gain.
    """
    x0, y0, lo, hi = lattice
    full_sums, over_sums = sums
    _, _, over_ranges, full_ranges = geometry
    oc_lo, oc_hi, or_lo, or_hi = over_ranges
    fc_lo, fc_hi, fr_lo, fr_hi = full_ranges
    # range_sums collapses empty ranges through min(lo, hi); test the
    # corner the formula actually reads.
    touched = changed_map[np.minimum(oc_lo, oc_hi), np.minimum(or_lo, or_hi)]
    touched |= changed_map[np.minimum(fc_lo, fc_hi), np.minimum(fr_lo, fr_hi)]
    idx = np.flatnonzero(touched)
    if idx.size == 0:
        return (x0, y0, lo, hi), (full_sums, over_sums), 0
    if idx.size > DELTA_LATTICE_MAX_TOUCHED * touched.size:
        return None
    sub_full = range_sums(table, fc_lo[idx], fc_hi[idx], fr_lo[idx], fr_hi[idx])
    sub_over = range_sums(table, oc_lo[idx], oc_hi[idx], or_lo[idx], or_hi[idx])
    new_full = full_sums.copy()
    new_over = over_sums.copy()
    new_full[idx] = sub_full
    new_over[idx] = sub_over
    sub_lo, sub_hi = compiler.bounds_from_sums(sub_full, sub_over, ctx)
    new_lo = lo.copy()
    new_hi = hi.copy()
    new_lo[idx] = sub_lo
    new_hi[idx] = sub_hi
    return (x0, y0, new_lo, new_hi), (new_full, new_over), int(idx.size)


def _surviving_cell_entries(
    new_index,
    width: float,
    height: float,
    cache: dict,
    changed: np.ndarray,
    new_of_old: np.ndarray,
    renumber: bool,
) -> dict:
    """The cell-cache entries untouched by the changed rectangles.

    Reconstructs each cached lattice cell's rectangle from the (shared)
    index geometry, keeps entries whose cell no changed rectangle
    overlaps, and (when ``renumber``, i.e. rows were deleted) maps
    surviving active-index arrays through ``new_of_old``.
    """
    if not cache:
        return {}
    cw, ch = new_index.cell_width, new_index.cell_height
    pad_rows = int(np.ceil(float(height) / ch))
    lat_rows = pad_rows + new_index.sy
    pad_cols = int(np.ceil(float(width) / cw))
    keys = np.fromiter(cache.keys(), dtype=np.int64, count=len(cache))
    ci, ri = keys // lat_rows, keys % lat_rows
    x0 = new_index.space.x_min + (ci - pad_cols) * cw
    y0 = new_index.space.y_min + (ri - pad_rows) * ch
    cx_min, cy_min, cx_max, cy_max = changed
    hit = (
        (cx_min[np.newaxis, :] < (x0 + cw)[:, np.newaxis])
        & (x0[:, np.newaxis] < cx_max[np.newaxis, :])
        & (cy_min[np.newaxis, :] < (y0 + ch)[:, np.newaxis])
        & (y0[:, np.newaxis] < cy_max[np.newaxis, :])
    ).any(axis=1)
    surviving: dict = {}
    for key, overlapped in zip(keys.tolist(), hit.tolist()):
        if overlapped:
            continue
        entry = cache[key]
        if entry and renumber:
            active, sub, acc = entry
            entry = (new_of_old[active], sub, acc)
        surviving[key] = entry
    return surviving
