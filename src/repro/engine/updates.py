"""Incremental dataset updates for :class:`~repro.engine.QuerySession`.

Real deployments see objects arrive and expire continuously; rebuilding
the grid index, channel suffix tables and lattice intervals per change
throws away everything a session memoizes.  This module implements the
mutation path (DESIGN.md §9): :func:`apply_update` takes an
:class:`UpdateBatch` (rows to append and/or delete), derives the mutated
dataset, and *surgically* patches the session's warm artefacts so that
every subsequent answer is **bitwise-identical** to a cold
:class:`~repro.engine.QuerySession` built on the final dataset at the
same granularity and settings -- while re-deriving only what the update
actually touched:

* the :class:`~repro.index.GridIndex` is patched per dirty cell
  (:meth:`GridIndex.updated`); a bounds-changing update falls back to a
  lazy cold rebuild (still correct, no longer sublinear);
* cached :class:`~repro.core.channels.ChannelCompiler` s are row-remapped
  (kept rows gathered, appended rows compiled alone);
* channel suffix tables are re-summed only at dirty cells from the
  retained pre-suffix cell sums;
* ASP reductions are row-patched and their GPS accuracies recomputed;
* candidate-lattice intervals are dropped (recomputed lazily from the
  patched tables -- O(lattice·C), independent of ``n``);
* per-cell level-0 accumulations survive unless a changed rectangle
  overlaps their cell (deletes renumber the surviving active indices).

Bitwise fidelity rests on one property: every per-cell float sum is
accumulated over member rows in ascending row order, and updates
preserve each clean cell's member sequence exactly (appends land at the
end of the dataset; deletes preserve relative order).

Concurrency: the session's update gate makes :func:`apply_update`
exclusive with ``solve``/``solve_batch``/``warm`` -- an update waits for
in-flight solves to drain and blocks new ones, so a solve observes
either the pre- or the post-update session, never a mix.  The PR-2
in-flight-deduplication and pinning semantics of the caches are
untouched (the swap happens under the memo lock, with no solves live).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..asp.rectset import RectSet
from ..asp.reduction import reduce_to_asp
from ..core.channels import ChannelCompiler
from ..core.objects import SpatialDataset
from ..dssearch.drop import gps_accuracy
from ..index.summary import cell_sums_to_suffix_table


@dataclass(frozen=True)
class UpdateBatch:
    """One batched mutation: delete current rows, then append new ones.

    ``delete`` selects rows of the dataset *as it is when the batch is
    applied* (boolean mask or index array); ``append`` is a
    :class:`SpatialDataset` sharing the session's schema, or a sequence
    of ``(x, y, {attr: value})`` records.  Deletions are applied first,
    appends land at the end of the surviving rows.
    """

    append: object | None = None
    delete: object | None = None

    def append_dataset(self, schema) -> SpatialDataset | None:
        """The append payload as an encoded dataset (or ``None``)."""
        if self.append is None:
            return None
        if isinstance(self.append, SpatialDataset):
            return self.append
        return SpatialDataset.from_records(list(self.append), schema)


@dataclass
class UpdateStats:
    """What one :func:`apply_update` call did (tests, benches, logging)."""

    appended: int = 0
    deleted: int = 0
    epoch: int = 0
    index_patched: bool = False
    dirty_cells: int = 0
    tables_patched: int = 0
    tables_dropped: int = 0
    reductions_patched: int = 0
    lattices_dropped: int = 0
    cell_entries_kept: int = 0
    cell_entries_dropped: int = 0


def apply_update(session, batch: UpdateBatch) -> UpdateStats:
    """Mutate a session's dataset in place, patching its warm state.

    Exclusive with solves via the session's update gate; see the module
    docstring for the contract.  Returns an :class:`UpdateStats`.
    """
    with session._update_cv:
        while session._updating:
            session._update_cv.wait()
        session._updating = True
        while session._active_solves:
            session._update_cv.wait()
    try:
        return _apply_exclusive(session, batch)
    finally:
        with session._update_cv:
            session._updating = False
            session._update_cv.notify_all()


def _apply_exclusive(session, batch: UpdateBatch) -> UpdateStats:
    old_ds: SpatialDataset = session.dataset
    append_ds = batch.append_dataset(old_ds.schema)
    if append_ds is not None and append_ds.schema != old_ds.schema:
        raise ValueError("appended rows must share the session dataset's schema")

    if batch.delete is not None:
        keep_mask = old_ds.delete_mask(batch.delete)
        kept = np.flatnonzero(keep_mask)
    else:
        kept = np.arange(old_ds.n, dtype=np.int64)
    n_deleted = old_ds.n - kept.size
    n_appended = append_ds.n if append_ds is not None else 0
    stats = UpdateStats(appended=n_appended, deleted=n_deleted, epoch=session.epoch)
    if n_deleted == 0 and n_appended == 0:
        return stats  # no-op: nothing invalidated, epoch unchanged

    survivors = old_ds if n_deleted == 0 else old_ds.subset(kept)
    new_ds = survivors if n_appended == 0 else survivors.append(append_ds)

    # ------------------------------------------------------------------
    # Derive every replacement artefact *before* the swap.  The update
    # gate excludes solves/warms, but not clear_caches (a SessionPool
    # evicting under memory pressure calls it from another key's
    # traffic), so the cache dicts are shallow-snapshotted under the
    # memo lock and the derivation works off the snapshot.  Racing an
    # eviction is then merely a missed reclamation: the swap below
    # re-installs patched artefacts, all deterministic for the new
    # dataset, and the pool re-measures on its next touch.
    # ------------------------------------------------------------------
    with session._memo_lock:
        old_compilers = dict(session._compilers)
        old_pins = dict(session._pins)
        old_tables = dict(session._tables)
        old_table_cells = dict(session._table_cells)
        old_contexts = dict(session._contexts)
        old_empty_reps = dict(session._empty_reps)
        old_reductions = dict(session._reductions)
        old_lattices = dict(session._lattices)
        old_cell_caches = dict(session._cells)
    old_index = session._index
    new_index = None
    dirty_flat = members = local = None
    if old_index is not None and new_ds.n:
        patched = old_index.updated(new_ds, kept)
        if patched is not None:
            new_index, dirty_flat = patched
            members, local = new_index.dirty_members(dirty_flat)
            stats.index_patched = True
            stats.dirty_cells = int(dirty_flat.size)

    # Row-remap every cached compiler (same aggregator objects, so the
    # id-keyed aggregator caches keep their keys; compiler-keyed caches
    # are re-keyed to the new compiler ids below).
    new_compilers: dict = {}
    remap: dict = {}  # id(old compiler) -> new compiler
    for agg_id, old_comp in old_compilers.items():
        aggregator = old_pins[agg_id]
        app_comp = (
            ChannelCompiler(append_ds, aggregator) if n_appended else None
        )
        new_comp = old_comp.remapped(new_ds, kept, app_comp)
        new_compilers[agg_id] = new_comp
        remap[id(old_comp)] = new_comp

    # Channel tables: patch at dirty cells where the pre-suffix cell
    # sums were retained; anything unpatchable is dropped and lazily
    # recomputed cold (answers unaffected either way).
    new_tables: dict = {}
    new_table_cells: dict = {}
    for old_cid, _ in old_tables.items():
        new_comp = remap.get(old_cid)
        cells = old_table_cells.get(old_cid)
        if new_comp is None or new_index is None or cells is None:
            stats.tables_dropped += 1
            continue
        patched_cells = new_index.patch_cell_sums(
            cells, dirty_flat, local, new_comp.weights[members]
        )
        new_table_cells[id(new_comp)] = patched_cells
        new_tables[id(new_comp)] = cell_sums_to_suffix_table(patched_cells)
        stats.tables_patched += 1

    # Bound contexts and empty representations: cheap, recompute eagerly
    # for whatever was warm.
    new_contexts = {
        id(remap[cid]): remap[cid].make_context()
        for cid in old_contexts
        if cid in remap
    }
    new_empty_reps = {
        agg_id: old_pins[agg_id].empty_representation(new_ds)
        for agg_id in old_empty_reps
        if agg_id in old_pins
    }

    # ASP reductions: row-patch the rectangles (elementwise per object,
    # so gather+concat is bitwise the cold reduction) and recompute the
    # GPS accuracies over the full new set, exactly as cold would.
    new_reductions: dict = {}
    changed_rects: dict = {}  # (w, h, anchor) -> coords of changed rects
    deleted_mask = np.ones(old_ds.n, dtype=bool)
    deleted_mask[kept] = False
    for (width, height, anchor), (rects, _) in old_reductions.items():
        app_rects = (
            reduce_to_asp(append_ds, width, height, anchor)
            if n_appended
            else None
        )
        parts = lambda old, app: (  # noqa: E731 - local 4-column zipper
            np.concatenate([old[kept], app]) if app is not None else old[kept]
        )
        new_rects = RectSet(
            parts(rects.x_min, None if app_rects is None else app_rects.x_min),
            parts(rects.y_min, None if app_rects is None else app_rects.y_min),
            parts(rects.x_max, None if app_rects is None else app_rects.x_max),
            parts(rects.y_max, None if app_rects is None else app_rects.y_max),
        )
        new_reductions[(width, height, anchor)] = (
            new_rects,
            gps_accuracy(new_rects),
        )
        stats.reductions_patched += 1
        changed = [
            np.stack(
                [
                    rects.x_min[deleted_mask],
                    rects.y_min[deleted_mask],
                    rects.x_max[deleted_mask],
                    rects.y_max[deleted_mask],
                ]
            )
        ]
        if app_rects is not None:
            changed.append(
                np.stack(
                    [
                        app_rects.x_min,
                        app_rects.y_min,
                        app_rects.x_max,
                        app_rects.y_max,
                    ]
                )
            )
        changed_rects[(width, height, anchor)] = np.concatenate(changed, axis=1)

    # Candidate lattices depend on whole-table range sums; recomputing
    # them from the patched tables is O(lattice·C) and happens lazily.
    stats.lattices_dropped = len(old_lattices)

    # Per-cell level-0 accumulations: keep entries no changed rectangle
    # overlaps (their active set, gathered coordinates and accumulation
    # are bitwise the cold ones); renumber active indices after deletes.
    new_cells: dict = {}
    if new_index is not None:
        new_of_old = np.full(old_ds.n, -1, dtype=np.int64)
        new_of_old[kept] = np.arange(kept.size, dtype=np.int64)
        anchor = session.settings.anchor
        for (width, height, old_cid), cache in old_cell_caches.items():
            new_comp = remap.get(old_cid)
            changed = changed_rects.get((width, height, anchor))
            if new_comp is None or changed is None:
                stats.cell_entries_dropped += len(cache)
                continue
            surviving = _surviving_cell_entries(
                new_index,
                width,
                height,
                cache,
                changed,
                new_of_old,
                renumber=n_deleted > 0,
            )
            stats.cell_entries_kept += len(surviving)
            stats.cell_entries_dropped += len(cache) - len(surviving)
            new_cells[(width, height, id(new_comp))] = surviving
    else:
        stats.cell_entries_dropped = sum(
            len(cache) for cache in old_cell_caches.values()
        )

    # ------------------------------------------------------------------
    # Swap, atomically w.r.t. everything that takes the memo lock
    # (save_session snapshots, clear_caches).
    # ------------------------------------------------------------------
    with session._memo_lock:
        session.dataset = new_ds
        session._index = new_index
        session._compilers = new_compilers
        session._tables = new_tables
        session._table_cells = new_table_cells
        session._contexts = new_contexts
        session._empty_reps = new_empty_reps
        session._reductions = new_reductions
        session._lattices = {}
        if new_index is None:
            # The index geometry may shift on a cold rebuild; the cached
            # lattice geometry is only valid while it is preserved.
            session._lattice_geometry = {}
        session._cells = new_cells
        session._pending_tables = {}
        session._pending_lattices = {}
        session._pins = {
            agg_id: old_pins[agg_id]
            for agg_id in set(new_compilers) | set(new_empty_reps)
        }
        for new_comp in new_compilers.values():
            session._pins[id(new_comp)] = new_comp
        session.epoch += 1
        stats.epoch = session.epoch
    return stats


def _surviving_cell_entries(
    new_index,
    width: float,
    height: float,
    cache: dict,
    changed: np.ndarray,
    new_of_old: np.ndarray,
    renumber: bool,
) -> dict:
    """The cell-cache entries untouched by the changed rectangles.

    Reconstructs each cached lattice cell's rectangle from the (shared)
    index geometry, keeps entries whose cell no changed rectangle
    overlaps, and (when ``renumber``, i.e. rows were deleted) maps
    surviving active-index arrays through ``new_of_old``.
    """
    if not cache:
        return {}
    cw, ch = new_index.cell_width, new_index.cell_height
    pad_rows = int(np.ceil(float(height) / ch))
    lat_rows = pad_rows + new_index.sy
    pad_cols = int(np.ceil(float(width) / cw))
    keys = np.fromiter(cache.keys(), dtype=np.int64, count=len(cache))
    ci, ri = keys // lat_rows, keys % lat_rows
    x0 = new_index.space.x_min + (ci - pad_cols) * cw
    y0 = new_index.space.y_min + (ri - pad_rows) * ch
    cx_min, cy_min, cx_max, cy_max = changed
    hit = (
        (cx_min[np.newaxis, :] < (x0 + cw)[:, np.newaxis])
        & (x0[:, np.newaxis] < cx_max[np.newaxis, :])
        & (cy_min[np.newaxis, :] < (y0 + ch)[:, np.newaxis])
        & (y0[:, np.newaxis] < cy_max[np.newaxis, :])
    ).any(axis=1)
    surviving: dict = {}
    for key, overlapped in zip(keys.tolist(), hit.tolist()):
        if overlapped:
            continue
        entry = cache[key]
        if entry and renumber:
            active, sub, acc = entry
            entry = (new_of_old[active], sub, acc)
        surviving[key] = entry
    return surviving
