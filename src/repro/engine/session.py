"""The zero-churn query engine: a dataset-bound :class:`QuerySession`.

Serving many ASRS queries over one dataset repeats a lot of work that
depends only on the dataset (or on coarse query parameters), not on the
query target: the grid index and its channel suffix tables, the channel
compilation of each aggregator, the ASP reduction for each region size,
the GPS accuracies, the bound contexts, and the empty-region seed.  A
cold :func:`~repro.dssearch.ds_search` / :func:`~repro.index.gi_ds_search`
call recomputes all of it per query.

A :class:`QuerySession` binds a dataset once and memoizes every one of
those artefacts (DESIGN.md §7):

* the :class:`~repro.index.GridIndex` (built lazily on the first GI-DS
  solve);
* one :class:`~repro.core.channels.ChannelCompiler` per aggregator;
* the index channel suffix table and full-dataset
  :class:`~repro.core.channels.BoundContext` per compiler;
* the ASP :class:`~repro.asp.rectset.RectSet` and its GPS accuracy per
  ``(width, height, anchor)``;
* the empty representation per aggregator;
* the candidate-lattice interval bounds and the level-0 state (active
  set + root grid accumulation) of every searched lattice cell, per
  ``(width, height, aggregator)``;
* one shared :class:`~repro.dssearch.grid.BufferPool` of grid scratch
  buffers.

Caches key aggregators by object identity: reusing the *same*
aggregator object across queries -- the natural way to phrase a
workload -- hits every cache, while structurally equal copies are
merely cache misses, never wrong answers.  All cached artefacts are
deterministic functions of the dataset, so session answers are
bitwise-identical to cold calls made at the session's configuration
(granularity and settings).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from ..asp.rectset import RectSet
from ..asp.reduction import reduce_to_asp
from ..core.aggregators import CompositeAggregator
from ..core.channels import BoundContext, ChannelCompiler
from ..core.objects import SpatialDataset
from ..core.query import ASRSQuery, RegionResult
from ..dssearch.drop import gps_accuracy
from ..dssearch.grid import BufferPool
from ..dssearch.search import DSSearchEngine, SearchSettings
from ..index.gids import GIDSStats, candidate_lattice_intervals, gi_ds_search
from ..index.grid_index import GridIndex


class QuerySession:
    """Binds a dataset once; amortizes all index state across queries.

    Parameters
    ----------
    dataset:
        The spatial dataset every query of this session runs against.
    granularity:
        Grid-index granularity ``(sx, sy)`` for GI-DS solves; the index
        is built lazily on first use.
    settings:
        DS-Search settings shared by all solves (the ``anchor`` also
        keys the ASP-reduction cache).
    """

    def __init__(
        self,
        dataset: SpatialDataset,
        granularity: Tuple[int, int] | str = "auto",
        settings: SearchSettings | None = None,
    ) -> None:
        self.dataset = dataset
        if granularity == "auto":
            # A session amortizes the index build, so it affords a finer
            # grid than a cold call: tighter cell bounds prune more and
            # shrink the per-cell active sets.  ~2·sqrt(n) per axis
            # (capped) measures best on the Fig. 10 workloads.
            side = int(round(2.0 * np.sqrt(max(dataset.n, 1))))
            granularity = (min(256, max(8, side)),) * 2
        self.granularity = granularity
        self.settings = settings or SearchSettings()
        self._pool = BufferPool()
        self._index: GridIndex | None = None
        # Aggregators are kept referenced so their ids stay unique for
        # the session's lifetime.
        self._aggregators: Dict[int, CompositeAggregator] = {}
        self._compilers: Dict[int, ChannelCompiler] = {}
        self._tables: Dict[int, np.ndarray] = {}
        self._contexts: Dict[int, BoundContext] = {}
        self._empty_reps: Dict[int, np.ndarray] = {}
        self._reductions: Dict[
            Tuple[float, float, str], Tuple[RectSet, Tuple[float, float]]
        ] = {}
        self._lattices: Dict[Tuple[float, float, int], tuple] = {}
        self._cells: Dict[Tuple[float, float, int], dict] = {}

    # ------------------------------------------------------------------
    # Memoized artefacts
    # ------------------------------------------------------------------
    @property
    def index(self) -> GridIndex:
        """The session's grid index, built on first access."""
        if self._index is None:
            self._index = GridIndex.build(self.dataset, *self.granularity)
        return self._index

    def compiler_for(self, aggregator: CompositeAggregator) -> ChannelCompiler:
        """The memoized channel compiler of an aggregator object."""
        key = id(aggregator)
        compiler = self._compilers.get(key)
        if compiler is None:
            compiler = ChannelCompiler(self.dataset, aggregator)
            self._aggregators[key] = aggregator
            self._compilers[key] = compiler
        return compiler

    def channel_tables(self, compiler: ChannelCompiler) -> np.ndarray:
        """The memoized index suffix table of a compiler's channels."""
        key = id(compiler)
        tables = self._tables.get(key)
        if tables is None:
            tables = self.index.channel_tables(compiler)
            self._tables[key] = tables
        return tables

    def context_for(self, compiler: ChannelCompiler) -> BoundContext:
        """The memoized full-dataset bound context of a compiler."""
        key = id(compiler)
        ctx = self._contexts.get(key)
        if ctx is None:
            ctx = compiler.make_context()
            self._contexts[key] = ctx
        return ctx

    def empty_rep_for(self, aggregator: CompositeAggregator) -> np.ndarray:
        """The memoized empty-region representation of an aggregator."""
        key = id(aggregator)
        rep = self._empty_reps.get(key)
        if rep is None:
            rep = aggregator.empty_representation(self.dataset)
            self._empty_reps[key] = rep
        return rep

    def lattice_for(
        self, width: float, height: float, compiler: ChannelCompiler
    ) -> tuple:
        """The memoized candidate-lattice intervals for a region size.

        Target-independent (DESIGN.md §7.1): a warm GI-DS solve reduces
        its whole lattice-bounding phase to one ``lower_bound_many``.
        """
        key = (float(width), float(height), id(compiler))
        lattice = self._lattices.get(key)
        if lattice is None:
            lattice = candidate_lattice_intervals(
                self.index,
                compiler,
                width,
                height,
                tables=self.channel_tables(compiler),
                ctx=self.context_for(compiler),
            )
            self._lattices[key] = lattice
        return lattice

    def reduction_for(
        self, width: float, height: float
    ) -> Tuple[RectSet, Tuple[float, float]]:
        """The memoized ASP reduction + GPS accuracy for a region size."""
        key = (float(width), float(height), self.settings.anchor)
        cached = self._reductions.get(key)
        if cached is None:
            rects = reduce_to_asp(self.dataset, width, height, self.settings.anchor)
            cached = (rects, gps_accuracy(rects))
            self._reductions[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _engine(self, query: ASRSQuery, delta: float) -> DSSearchEngine:
        """A search engine assembled entirely from cached artefacts."""
        compiler = self.compiler_for(query.aggregator)
        if self.dataset.n:
            rects, accuracy = self.reduction_for(query.width, query.height)
        else:
            rects, accuracy = None, None
        return DSSearchEngine(
            self.dataset,
            query,
            self.settings,
            compiler=compiler,
            delta=delta,
            rects=rects,
            accuracy=accuracy,
            empty_rep=self.empty_rep_for(query.aggregator),
            pool=self._pool,
        )

    def solve(
        self,
        query: ASRSQuery,
        method: str = "gids",
        delta: float = 0.0,
        probe_cells: int = 16,
        return_stats: bool = False,
    ):
        """Solve one ASRS query on the warm path.

        ``method`` is ``"gids"`` (Algorithm 2 over the session index,
        the default) or ``"ds"`` (plain Algorithm 1, no index).
        Results are bitwise-identical to the corresponding cold call
        *at the session's configuration*:
        ``gi_ds_search(dataset, query, granularity=session.granularity,
        settings=session.settings)`` resp. ``ds_search(dataset, query,
        session.settings)``.  A cold call at a different granularity
        can return a different equally-optimal region on tie plateaus.
        """
        if method not in ("gids", "ds"):
            raise ValueError(f"method must be 'gids' or 'ds', got {method!r}")
        engine = self._engine(query, delta)
        if self.dataset.n == 0:
            result: RegionResult = engine.result()
            if return_stats:
                # Match the stats type of the corresponding cold call.
                return result, (GIDSStats() if method == "gids" else engine.stats)
            return result
        if method == "ds":
            result = engine.run()
            return (result, engine.stats) if return_stats else result
        compiler = engine.compiler
        cell_key = (float(query.width), float(query.height), id(compiler))
        return gi_ds_search(
            self.dataset,
            query,
            index=self.index,
            probe_cells=probe_cells,
            return_stats=return_stats,
            engine=engine,
            channel_tables=self.channel_tables(compiler),
            bound_context=self.context_for(compiler),
            lattice_intervals=self.lattice_for(query.width, query.height, compiler),
            cell_cache=self._cells.setdefault(cell_key, {}),
        )

    def solve_batch(
        self,
        queries: Sequence[ASRSQuery] | Iterable[ASRSQuery],
        method: str = "gids",
        delta: float = 0.0,
        probe_cells: int = 16,
        return_stats: bool = False,
    ) -> list:
        """Solve a batch of queries, sharing every cached artefact.

        Queries that reuse aggregator objects and region sizes hit the
        session caches; the first query of each distinct shape warms
        them.  Returns one entry per query, in order -- plain
        :class:`RegionResult` s, or ``(result, stats)`` pairs with
        ``return_stats=True``.
        """
        return [
            self.solve(
                q,
                method=method,
                delta=delta,
                probe_cells=probe_cells,
                return_stats=return_stats,
            )
            for q in queries
        ]

    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop every memoized artefact (memory pressure relief).

        The next solve re-warms lazily; answers are unaffected.  The
        per-cell level-0 cache is additionally capped at
        :data:`repro.index.gids.CELL_CACHE_CAP` entries per
        ``(width, height, aggregator)`` key, so calling this is only
        needed to reclaim memory across many distinct query shapes.
        """
        self._index = None
        self._aggregators.clear()
        self._compilers.clear()
        self._tables.clear()
        self._contexts.clear()
        self._empty_reps.clear()
        self._reductions.clear()
        self._lattices.clear()
        self._cells.clear()

    def cache_info(self) -> dict:
        """Occupancy of the session caches (for tests and diagnostics)."""
        return {
            "index_built": self._index is not None,
            "compilers": len(self._compilers),
            "channel_tables": len(self._tables),
            "contexts": len(self._contexts),
            "empty_reps": len(self._empty_reps),
            "reductions": len(self._reductions),
            "lattices": len(self._lattices),
            "cached_cells": sum(len(c) for c in self._cells.values()),
        }

    def __repr__(self) -> str:
        return (
            f"QuerySession(n={self.dataset.n}, granularity={self.granularity}, "
            f"caches={self.cache_info()})"
        )
