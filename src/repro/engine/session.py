"""The zero-churn query engine: a dataset-bound :class:`QuerySession`.

Serving many ASRS queries over one dataset repeats a lot of work that
depends only on the dataset (or on coarse query parameters), not on the
query target: the grid index and its channel suffix tables, the channel
compilation of each aggregator, the ASP reduction for each region size,
the GPS accuracies, the bound contexts, and the empty-region seed.  A
cold :func:`~repro.dssearch.ds_search` / :func:`~repro.index.gi_ds_search`
call recomputes all of it per query.

A :class:`QuerySession` binds a dataset once and memoizes every one of
those artefacts (DESIGN.md §7):

* the :class:`~repro.index.GridIndex` (built lazily on the first GI-DS
  solve);
* one :class:`~repro.core.channels.ChannelCompiler` per aggregator;
* the index channel suffix table and full-dataset
  :class:`~repro.core.channels.BoundContext` per compiler;
* the ASP :class:`~repro.asp.rectset.RectSet` and its GPS accuracy per
  ``(width, height, anchor)``;
* the empty representation per aggregator;
* the candidate-lattice interval bounds and the level-0 state (active
  set + root grid accumulation) of every searched lattice cell, per
  ``(width, height, aggregator)``;
* one shared :class:`~repro.dssearch.grid.BufferPool` of grid scratch
  buffers.

Caches key aggregators by object identity: reusing the *same*
aggregator object across queries -- the natural way to phrase a
workload -- hits every cache, while structurally equal copies are
merely cache misses, never wrong answers.  All cached artefacts are
deterministic functions of the dataset, so session answers are
bitwise-identical to cold calls made at the session's configuration
(granularity and settings).

Sessions are thread-safe (DESIGN.md §8.1): every memoization goes
through an in-flight-deduplicated get-or-compute, so concurrent
``solve`` calls share warm artefacts, never compute one twice, and
return results bitwise-identical to serial execution.  Each solve
assembles its own :class:`~repro.dssearch.search.DSSearchEngine`
(private incumbent state); the only cross-thread mutables are the
caches, whose values are deterministic and used read-only, and the
lock-guarded :class:`~repro.dssearch.grid.BufferPool`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Sequence, Tuple

import numpy as np

from ..analysis.sanitizer import make_condition, make_lock, sanitize_class
from ..asp.rectset import RectSet
from ..asp.reduction import reduce_to_asp
from ..core.aggregators import (
    AverageAggregator,
    CompositeAggregator,
    DistributionAggregator,
    SumAggregator,
)
from ..core.channels import BoundContext, ChannelCompiler
from ..core.geometry import Rect
from ..core.objects import SpatialDataset
from ..core.query import ASRSQuery, RegionResult
from ..core.selection import SelectAll, SelectByValue
from ..dssearch import canonical
from ..dssearch.drop import gps_accuracy
from ..dssearch.grid import BufferPool
from ..dssearch.search import DSSearchEngine, SearchSettings
from ..index.gids import (
    GIDSStats,
    candidate_lattice_geometry,
    candidate_lattice_intervals,
    gi_ds_search,
)
from ..index.grid_index import GridIndex

if TYPE_CHECKING:  # circular at runtime: updates.py/wal.py import sessions
    from .updates import UpdateStats
    from .wal import WriteAheadLog

_TERM_TAGS = {
    DistributionAggregator: "fD",
    AverageAggregator: "fA",
    SumAggregator: "fS",
}


def aggregator_signature(aggregator: CompositeAggregator) -> str | None:
    """A process-independent structural key for an aggregator, or ``None``.

    Session caches key aggregators by object identity, which cannot
    survive a save/load cycle; persisted per-aggregator artefacts
    (channel tables, lattice intervals) are keyed by this signature
    instead.  Only exact built-in terms with value-describable
    selections are signaturable -- subclasses and predicate selections
    return ``None`` and are simply not persisted (their artefacts are
    recomputed on first use, answers unaffected).

    The signature is the ``repr`` of a structured tuple, not a
    delimiter-joined string: attribute names are user-controlled, so
    flat joins could let two different term lists collide and adopt
    each other's persisted artefacts.
    """
    parts = []
    for term in aggregator.terms:
        tag = _TERM_TAGS.get(type(term))
        if tag is None:
            return None
        sel = term.selection
        if type(sel) is SelectAll:
            sel_key: tuple = ("all",)
        elif type(sel) is SelectByValue:
            sel_key = ("value", sel.attribute, repr(sel.value))
        else:
            return None
        parts.append((tag, term.attribute, sel_key))
    return repr(tuple(parts))


def aggregator_recipe(aggregator: CompositeAggregator) -> list | None:
    """A JSON-serializable rebuild recipe for an aggregator, or ``None``.

    Signatures identify persisted artefacts but are opaque; the recipe
    is their *invertible* sibling: format-v3 bundles store it next to
    each channel table so an incremental update (or a WAL replay) can
    reconstruct a structurally identical aggregator and patch the
    pending table's cell sums before any live aggregator object has
    adopted it (engine/updates.py).  ``None`` when a term is not
    recipe-able (custom subclass, predicate selection, or a selection
    value JSON cannot carry); such artefacts fall back to a lazy cold
    recompute after an update, answers unaffected.
    """
    parts: list = []
    for term in aggregator.terms:
        tag = _TERM_TAGS.get(type(term))
        if tag is None:
            return None
        sel = term.selection
        if type(sel) is SelectAll:
            sel_spec: list = ["all"]
        elif type(sel) is SelectByValue:
            value = sel.value
            if isinstance(value, np.generic):
                value = value.item()
            if not isinstance(value, (str, int, float, bool)):
                return None
            sel_spec = ["value", sel.attribute, value]
        else:
            return None
        parts.append([tag, term.attribute, sel_spec])
    return parts


_TAG_TERMS = {tag: cls for cls, tag in _TERM_TAGS.items()}


def aggregator_from_recipe(recipe: list) -> CompositeAggregator:
    """Invert :func:`aggregator_recipe` into a fresh aggregator object."""
    terms = []
    for tag, attribute, sel_spec in recipe:
        if sel_spec[0] == "all":
            selection: SelectAll | SelectByValue = SelectAll()
        elif sel_spec[0] == "value":
            selection = SelectByValue(sel_spec[1], sel_spec[2])
        else:
            raise ValueError(f"unknown selection spec {sel_spec!r} in recipe")
        cls = _TAG_TERMS.get(tag)
        if cls is None:
            raise ValueError(f"unknown term tag {tag!r} in recipe")
        terms.append(cls(attribute, selection))
    return CompositeAggregator(terms)


def _validated_granularity(
    granularity: Tuple[int, int] | str, n: int
) -> Tuple[int, int]:
    """``(sx, sy)`` from the granularity argument, or raise ``ValueError``.

    Accepts ``"auto"`` or a pair of integers >= 1.  Any other string
    used to reach ``GridIndex.build(dataset, *granularity)`` and splat
    its *characters* as arguments -- validated here instead.
    """
    if isinstance(granularity, str):
        if granularity != "auto":
            raise ValueError(
                "granularity must be 'auto' or a pair of ints >= 1, "
                f"got {granularity!r}"
            )
        # A session amortizes the index build, so it affords a finer
        # grid than a cold call: tighter cell bounds prune more and
        # shrink the per-cell active sets.  ~2·sqrt(n) per axis
        # (capped) measures best on the Fig. 10 workloads.
        side = int(round(2.0 * np.sqrt(max(n, 1))))
        return (min(256, max(8, side)),) * 2
    try:
        sx, sy = granularity
    except (TypeError, ValueError):
        raise ValueError(
            "granularity must be 'auto' or a pair of ints >= 1, "
            f"got {granularity!r}"
        ) from None
    if not all(
        isinstance(v, (int, np.integer)) and not isinstance(v, bool) and v >= 1
        for v in (sx, sy)
    ):
        raise ValueError(
            "granularity must be 'auto' or a pair of ints >= 1, "
            f"got {granularity!r}"
        )
    return (int(sx), int(sy))


class QuerySession:
    """Binds a dataset once; amortizes all index state across queries.

    Parameters
    ----------
    dataset:
        The spatial dataset every query of this session runs against.
    granularity:
        Grid-index granularity ``(sx, sy)`` for GI-DS solves, or
        ``"auto"``; the index is built lazily on first use.
    settings:
        DS-Search settings shared by all solves (the ``anchor`` also
        keys the ASP-reduction cache).
    """

    def __init__(
        self,
        dataset: SpatialDataset,
        granularity: Tuple[int, int] | str = "auto",
        settings: SearchSettings | None = None,
    ) -> None:
        self.dataset = dataset
        self.granularity = _validated_granularity(granularity, dataset.n)
        self.settings = settings or SearchSettings()
        #: Mutation counter: bumped by every effective append/delete/
        #: apply.  Bundles record it (engine/persist.py) so a stale
        #: on-disk index is diagnosable, not just refused by fingerprint.
        self.epoch = 0
        #: Optional :class:`~repro.engine.wal.WriteAheadLog`: when
        #: attached, every effective mutation is durably logged before
        #: state changes (see :meth:`attach_wal`).
        self.wal = None
        #: Bundle format version this session was restored from
        #: (``load_session`` sets it; ``None`` for a cold session).
        #: Purely diagnostic -- ``cache_info()``/``SessionPool.info()``
        #: surface it so operators can spot pre-current bundles.
        self.bundle_version: int | None = None
        #: Set by ``load_session`` when the restored index carries no
        #: pre-suffix cell sums (a pre-v2 bundle): the session serves
        #: queries but refuses mutation with a targeted error naming
        #: the bundle version (engine/updates.py); ``clear_caches``
        #: resets it (the index then rebuilds from the live dataset).
        self._nonpatchable_restore: int | None = None
        self._pool = BufferPool()
        self._index: GridIndex | None = None
        # Every aggregator/compiler whose id() keys a cache entry is
        # pinned here, atomically with the entry (inside _memo's store):
        # an id-keyed entry must never outlive its key object, or
        # CPython id reuse could hand a *different* aggregator a stale
        # artefact -- including entries repopulated by an in-flight
        # solve after a mid-solve clear_caches.
        self._pins: Dict[int, object] = {}  # guarded-by: _memo_lock
        self._compilers: Dict[int, ChannelCompiler] = {}
        self._tables: Dict[int, np.ndarray] = {}
        # Pre-suffix per-cell channel sums, kept next to each suffix
        # table so incremental updates can re-sum only dirty cells
        # (engine/updates.py).  Entries adopted from disk have no cells
        # and simply fall back to a lazy recompute on the first update.
        self._table_cells: Dict[int, np.ndarray] = {}
        self._contexts: Dict[int, BoundContext] = {}
        self._empty_reps: Dict[int, np.ndarray] = {}
        self._reductions: Dict[
            Tuple[float, float, str], Tuple[RectSet, Tuple[float, float]]
        ] = {}
        self._lattices: Dict[Tuple[float, float, int], tuple] = {}
        # Lattice *geometry* per (width, height): corner arrays plus the
        # Lemma-8 range indices.  Compiler-independent, and preserved
        # across in-bounds incremental updates (the index geometry does
        # not move), so a post-update lattice refresh pays only the
        # range sums, not the searchsorted geometry pass.
        self._lattice_geometry: Dict[Tuple[float, float], tuple] = {}
        # The (full, over) channel range sums each cached lattice was
        # derived from, kept so incremental updates can delta-patch the
        # intervals at only the dirty-touched positions
        # (engine/updates.py, DESIGN.md §10.4).
        self._lattice_sums: Dict[Tuple[float, float, int], tuple] = {}
        self._cells: Dict[Tuple[float, float, int], dict] = {}
        # Disk-restored artefacts keyed by aggregator *signature* (ids
        # do not survive a process restart); adopted into the id-keyed
        # caches on first use.  See engine/persist.py.  v3 bundles add
        # the pre-suffix cell sums and a rebuild recipe per table, so a
        # restored session stays patchable before adoption.
        self._pending_tables: Dict[str, np.ndarray] = {}
        self._pending_table_cells: Dict[str, np.ndarray] = {}
        self._pending_recipes: Dict[str, list] = {}
        self._pending_lattices: Dict[Tuple[float, float, str], tuple] = {}
        # The (full, over) range sums each pending lattice was derived
        # from (format-v4 bundles persist them): incremental updates
        # delta-patch a pending lattice exactly like a live one instead
        # of dropping it to a full lazy recompute (engine/updates.py).
        self._pending_lattice_sums: Dict[Tuple[float, float, str], tuple] = {}
        # Concurrency (DESIGN.md §8.1): the index gets a dedicated lock
        # (its build is the one expensive single-shot artefact); every
        # other cache goes through the in-flight-deduplicated _memo.
        self._index_lock = make_lock("QuerySession._index_lock")
        self._memo_lock = make_lock("QuerySession._memo_lock")
        self._inflight: Dict[tuple, threading.Event] = {}  # guarded-by: _memo_lock
        # Update gate (DESIGN.md §9): solves/warms hold a shared token;
        # apply/append/delete take the gate exclusively -- they wait for
        # in-flight solves to drain and block new ones, so a solve sees
        # either the pre- or the post-update session, never a mix.
        self._update_cv = make_condition("QuerySession._update_cv")
        self._active_solves = 0  # guarded-by: _update_cv
        self._updating = False  # guarded-by: _update_cv

    @contextmanager
    def _solve_gate(self):
        """Shared side of the update gate (held for a whole solve)."""
        with self._update_cv:
            while self._updating:
                self._update_cv.wait()
            self._active_solves += 1
        try:
            yield
        finally:
            with self._update_cv:
                self._active_solves -= 1
                if self._active_solves == 0:
                    self._update_cv.notify_all()

    @contextmanager
    def _exclusive_gate(self):
        """Exclusive side of the update gate (drains in-flight solves).

        Held by ``apply``/``append``/``delete`` for the whole mutation,
        and by :meth:`repro.service.RegionService.compact` while it
        rewrites the session's write-ahead log and re-aligns the epoch:
        anything run under this gate observes no concurrent solve and
        admits none until it exits.
        """
        with self._update_cv:
            while self._updating:
                self._update_cv.wait()
            self._updating = True
            while self._active_solves:
                self._update_cv.wait()
        try:
            yield
        finally:
            with self._update_cv:
                self._updating = False
                self._update_cv.notify_all()

    # ------------------------------------------------------------------
    # Memoization machinery
    # ------------------------------------------------------------------
    def _memo(self, cache: dict, key, compute: Callable, pin=None):
        """Get-or-compute with per-key in-flight deduplication.

        The fast path is a bare ``dict.get`` (atomic in CPython).  On a
        miss, exactly one thread computes while any concurrent requester
        of the *same* key waits on an event -- compute-once matters
        beyond efficiency, because downstream caches key artefacts by
        ``id()`` and must all observe the same object.  ``compute``
        runs with no lock held, so nested memoizations (lattice ->
        tables -> index) cannot deadlock; the artefact dependency graph
        is acyclic, so neither can the event waits.

        ``pin`` names the object whose ``id()`` appears in ``key``; it
        is stored into ``_pins`` under the same lock acquisition as the
        entry, so a concurrent ``clear_caches`` (which drops entries
        and pins together) can never leave an entry keyed by the id of
        a collectable object.
        """
        value = cache.get(key)
        if value is not None:
            return value
        inflight_key = (id(cache), key)
        with self._memo_lock:
            value = cache.get(key)
            if value is not None:
                return value
            event = self._inflight.get(inflight_key)
            if event is None:
                self._inflight[inflight_key] = event = threading.Event()
                owner = True
            else:
                owner = False
        if not owner:
            event.wait()
            value = cache.get(key)
            if value is not None:
                return value
            # The owner failed (its compute raised): take over.
            return self._memo(cache, key, compute, pin=pin)
        try:
            value = compute()
            with self._memo_lock:
                if pin is not None:
                    self._pins[id(pin)] = pin
                cache[key] = value
        finally:
            with self._memo_lock:
                del self._inflight[inflight_key]
            event.set()
        return value

    # ------------------------------------------------------------------
    # Memoized artefacts
    # ------------------------------------------------------------------
    @property
    def index(self) -> GridIndex:
        """The session's grid index, built on first access."""
        idx = self._index
        if idx is None:
            with self._index_lock:
                if self._index is None:
                    self._index = GridIndex.build(self.dataset, *self.granularity)
                idx = self._index
        return idx

    def compiler_for(self, aggregator: CompositeAggregator) -> ChannelCompiler:
        """The memoized channel compiler of an aggregator object."""
        return self._memo(
            self._compilers,
            id(aggregator),
            lambda: ChannelCompiler(self.dataset, aggregator),
            pin=aggregator,
        )

    def channel_tables(self, compiler: ChannelCompiler) -> np.ndarray:
        """The memoized index suffix table of a compiler's channels."""

        def compute():
            if self._pending_tables:
                sig = aggregator_signature(compiler.aggregator)
                pending = (
                    self._pending_tables.get(sig) if sig is not None else None
                )
                if pending is not None:
                    # Adopted from disk.  v3 bundles carry the pre-suffix
                    # cell sums: install them next to the table so later
                    # updates patch this entry like a live one (pre-v3
                    # adoptions have none and recompute cold on the
                    # first update).
                    cells = self._pending_table_cells.get(sig)
                    if cells is not None:
                        with self._memo_lock:
                            self._table_cells[id(compiler)] = cells
                    return pending
            cells, table = self.index.channel_cells_and_table(compiler)
            with self._memo_lock:
                self._table_cells[id(compiler)] = cells
            return table

        return self._memo(self._tables, id(compiler), compute, pin=compiler)

    def context_for(self, compiler: ChannelCompiler) -> BoundContext:
        """The memoized full-dataset bound context of a compiler."""
        return self._memo(
            self._contexts, id(compiler), compiler.make_context, pin=compiler
        )

    def empty_rep_for(self, aggregator: CompositeAggregator) -> np.ndarray:
        """The memoized empty-region representation of an aggregator."""
        return self._memo(
            self._empty_reps,
            id(aggregator),
            lambda: aggregator.empty_representation(self.dataset),
            pin=aggregator,
        )

    def lattice_for(
        self, width: float, height: float, compiler: ChannelCompiler
    ) -> tuple:
        """The memoized candidate-lattice intervals for a region size.

        Target-independent (DESIGN.md §7.1): a warm GI-DS solve reduces
        its whole lattice-bounding phase to one ``lower_bound_many``.
        """
        key = (float(width), float(height), id(compiler))

        def compute():
            if self._pending_lattices:
                sig = aggregator_signature(compiler.aggregator)
                if sig is not None:
                    pending_key = (float(width), float(height), sig)
                    pending = self._pending_lattices.get(pending_key)
                    if pending is not None:
                        # Adopted from disk.  v4 bundles carry the range
                        # sums the intervals were derived from: install
                        # them so later updates delta-patch this lattice
                        # like a live one (pre-v4 adoptions have none
                        # and drop to a full lazy refresh on update).
                        sums = self._pending_lattice_sums.get(pending_key)
                        if sums is not None:
                            with self._memo_lock:
                                self._lattice_sums[key] = sums
                        return pending
            geometry = self._memo(
                self._lattice_geometry,
                (float(width), float(height)),
                lambda: candidate_lattice_geometry(self.index, width, height),
            )
            intervals, sums = candidate_lattice_intervals(
                self.index,
                compiler,
                width,
                height,
                tables=self.channel_tables(compiler),
                ctx=self.context_for(compiler),
                geometry=geometry,
                return_sums=True,
            )
            # Keep the range sums next to the intervals: incremental
            # updates delta-patch both (engine/updates.py).
            with self._memo_lock:
                self._lattice_sums[key] = sums
            return intervals

        return self._memo(self._lattices, key, compute, pin=compiler)

    def reduction_for(
        self, width: float, height: float
    ) -> Tuple[RectSet, Tuple[float, float]]:
        """The memoized ASP reduction + GPS accuracy for a region size."""
        key = (float(width), float(height), self.settings.anchor)

        def compute():
            rects = reduce_to_asp(
                self.dataset, width, height, self.settings.anchor
            )
            return (rects, gps_accuracy(rects))

        return self._memo(self._reductions, key, compute)

    def warm(
        self, aggregator: CompositeAggregator, width: float, height: float
    ) -> "QuerySession":
        """Precompute every target-independent artefact of a query shape.

        After warming, the first ``solve`` of a query with this
        aggregator object and region size pays only the target-dependent
        search.  This is also what ``repro index-build`` persists via
        :func:`~repro.engine.persist.save_session`.
        """
        with self._solve_gate():
            compiler = self.compiler_for(aggregator)
            self.empty_rep_for(aggregator)
            if self.dataset.n:
                self.channel_tables(compiler)
                self.context_for(compiler)
                self.reduction_for(width, height)
                self.lattice_for(width, height, compiler)
        return self

    def warm_for(self, query: ASRSQuery) -> "QuerySession":
        """:meth:`warm` for a query's aggregator and region size."""
        return self.warm(query.aggregator, query.width, query.height)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _engine(
        self,
        query: ASRSQuery,
        delta: float,
        factory: type[DSSearchEngine] = DSSearchEngine,
    ) -> DSSearchEngine:
        """A search engine assembled entirely from cached artefacts."""
        compiler = self.compiler_for(query.aggregator)
        if self.dataset.n:
            rects, accuracy = self.reduction_for(query.width, query.height)
        else:
            rects, accuracy = None, None
        return factory(
            self.dataset,
            query,
            self.settings,
            compiler=compiler,
            delta=delta,
            rects=rects,
            accuracy=accuracy,
            empty_rep=self.empty_rep_for(query.aggregator),
            pool=self._pool,
        )

    def solve(
        self,
        query: ASRSQuery,
        method: str = "gids",
        delta: float = 0.0,
        probe_cells: int = 16,
        return_stats: bool = False,
    ):
        """Solve one ASRS query on the warm path.

        ``method`` is ``"gids"`` (Algorithm 2 over the session index,
        the default) or ``"ds"`` (plain Algorithm 1, no index).
        Results are bitwise-identical to the corresponding cold call
        *at the session's configuration*:
        ``gi_ds_search(dataset, query, granularity=session.granularity,
        settings=session.settings)`` resp. ``ds_search(dataset, query,
        session.settings)``.  A cold call at a different granularity
        can return a different equally-optimal region on tie plateaus.

        Safe to call from many threads at once: every solve runs on a
        private engine, and shared cached artefacts are read-only.
        """
        if method not in ("gids", "ds"):
            raise ValueError(f"method must be 'gids' or 'ds', got {method!r}")
        with self._solve_gate():
            return self._solve_gated(
                query, method, delta, probe_cells, return_stats
            )

    def solve_with_epoch(
        self,
        query: ASRSQuery,
        method: str = "gids",
        delta: float = 0.0,
        probe_cells: int = 16,
        return_stats: bool = False,
    ) -> tuple:
        """:meth:`solve` plus the dataset epoch the answer was computed at.

        The epoch is read under the same update-gate hold as the solve,
        so a concurrent mutation can never make the label disagree with
        the dataset the search actually ran on -- what a serving layer
        stamping results with epochs (``repro.service``) needs.
        """
        if method not in ("gids", "ds"):
            raise ValueError(f"method must be 'gids' or 'ds', got {method!r}")
        with self._solve_gate():
            return (
                self._solve_gated(query, method, delta, probe_cells, return_stats),
                self.epoch,
            )

    def _solve_gated(self, query, method, delta, probe_cells, return_stats):
        """The solve body; callers hold the shared side of the update gate."""
        engine = self._engine(query, delta)
        if self.dataset.n == 0:
            result: RegionResult = engine.result()
            if return_stats:
                # Match the stats type of the corresponding cold call.
                return result, (
                    GIDSStats() if method == "gids" else engine.stats
                )
            return result
        if method == "ds":
            result = engine.run()
            return (result, engine.stats) if return_stats else result
        compiler = engine.compiler
        cell_key = (float(query.width), float(query.height), id(compiler))
        return gi_ds_search(
            self.dataset,
            query,
            index=self.index,
            probe_cells=probe_cells,
            return_stats=return_stats,
            engine=engine,
            channel_tables=self.channel_tables(compiler),
            bound_context=self.context_for(compiler),
            lattice_intervals=self.lattice_for(
                query.width, query.height, compiler
            ),
            cell_cache=self._memo(self._cells, cell_key, dict, pin=compiler),
        )

    def solve_batch(
        self,
        queries: Sequence[ASRSQuery] | Iterable[ASRSQuery],
        method: str = "gids",
        delta: float = 0.0,
        probe_cells: int = 16,
        return_stats: bool = False,
        workers: int | None = None,
    ) -> list:
        """Solve a batch of queries, sharing every cached artefact.

        Queries that reuse aggregator objects and region sizes hit the
        session caches; the first query of each distinct shape warms
        them.  Returns one entry per query, in order -- plain
        :class:`RegionResult` s, or ``(result, stats)`` pairs with
        ``return_stats=True``.

        ``workers`` > 1 solves the batch on a thread pool against the
        now-thread-safe caches; answers are bitwise-identical to the
        serial path in any case (numpy releases the GIL on the heavy
        kernels, so multi-core runners overlap real work).  ``None`` or
        values <= 1 keep the serial path.
        """

        def one(q: ASRSQuery):
            return self.solve(
                q,
                method=method,
                delta=delta,
                probe_cells=probe_cells,
                return_stats=return_stats,
            )

        queries = list(queries)
        if workers is None or workers <= 1 or len(queries) <= 1:
            return [one(q) for q in queries]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=min(workers, len(queries))) as ex:
            return list(ex.map(one, queries))

    # ------------------------------------------------------------------
    # Canonical solving (dssearch/canonical.py, DESIGN.md §15)
    # ------------------------------------------------------------------
    def solve_canonical(
        self,
        query: ASRSQuery,
        *,
        domain: "Rect | None" = None,
        holes: Sequence["Rect"] = (),
        seed_point: tuple | None = None,
    ) -> RegionResult:
        """Solve with the decomposition-independent canonical answer.

        Same optimal distance as :meth:`solve`, but on tie plateaus the
        returned region is a pure function of the problem (DESIGN.md
        §15) instead of the search schedule -- which is what lets a
        shard router (:mod:`repro.shard`) merge per-shard answers into
        the bitwise-identical result this unsharded call returns.
        ``domain`` restricts anchor points (a shard passes its tile),
        ``holes`` excludes anchor rectangles (top-k rounds), and
        ``seed_point`` overrides the empty-region seed (a shard passes
        the router-computed global seed).
        """
        with self._solve_gate():
            return canonical.solve_canonical(
                lambda: self._engine(query, 0.0),
                lambda: self._engine(
                    query, 0.0, factory=canonical.TieCollectingEngine
                ),
                query,
                domain=domain,
                holes=holes,
                seed_point=seed_point,
            )

    def solve_canonical_with_epoch(
        self,
        query: ASRSQuery,
        *,
        domain: "Rect | None" = None,
        holes: Sequence["Rect"] = (),
        seed_point: tuple | None = None,
    ) -> tuple:
        """:meth:`solve_canonical` plus the epoch it was computed at."""
        with self._solve_gate():
            return (
                canonical.solve_canonical(
                    lambda: self._engine(query, 0.0),
                    lambda: self._engine(
                        query, 0.0, factory=canonical.TieCollectingEngine
                    ),
                    query,
                    domain=domain,
                    holes=holes,
                    seed_point=seed_point,
                ),
                self.epoch,
            )

    def solve_canonical_topk(
        self,
        query: ASRSQuery,
        k: int,
        *,
        exclude: "Rect | None" = None,
    ) -> list:
        """Canonical top-k: every round answered canonically, so the
        whole result list is decomposition-independent (the per-round
        exclusion holes derive from canonical answers)."""
        with self._solve_gate():
            return canonical.solve_canonical_topk(
                lambda: self._engine(query, 0.0),
                lambda: self._engine(
                    query, 0.0, factory=canonical.TieCollectingEngine
                ),
                query,
                k,
                dataset_n=self.dataset.n,
                exclude=exclude,
            )

    # ------------------------------------------------------------------
    # Incremental mutation (engine/updates.py, DESIGN.md §9)
    # ------------------------------------------------------------------
    def apply(self, batch) -> "UpdateStats":
        """Apply a batched mutation (deletes, then appends) in place.

        Every subsequent answer is bitwise-identical to a cold
        ``QuerySession(final_dataset, granularity=self.granularity,
        settings=self.settings)``, but warm artefacts are surgically
        patched instead of rebuilt: only dirty index cells are
        re-summed, lattice intervals recompute lazily from the patched
        tables, and per-cell level-0 state survives wherever no changed
        rectangle touches it.  Exclusive with in-flight solves (the
        update gate drains them first).  Returns an
        :class:`~repro.engine.updates.UpdateStats`.
        """
        from .updates import apply_update

        return apply_update(self, batch)

    def append(self, objects) -> "UpdateStats":
        """Append objects (a same-schema dataset or records) in place."""
        from .updates import UpdateBatch

        return self.apply(UpdateBatch(append=objects))

    def delete(self, mask_or_indices) -> "UpdateStats":
        """Delete the selected current rows in place."""
        from .updates import UpdateBatch

        return self.apply(UpdateBatch(delete=mask_or_indices))

    def attach_wal(self, wal) -> "WriteAheadLog":
        """Attach a write-ahead log; mutations then log before applying.

        ``wal`` is a :class:`~repro.engine.wal.WriteAheadLog` or a
        path (one is created).  Once attached, every effective
        ``apply``/``append``/``delete`` durably logs its batch before
        any session state changes, and :func:`~repro.engine.persist.
        save_session` checkpoints the log (drops records the new bundle
        covers).  Returns the attached log.  Replay never re-logs, so
        ``attach_wal`` + :func:`~repro.engine.wal.replay` is the
        natural crash-recovery sequence.
        """
        from .wal import WriteAheadLog

        if not isinstance(wal, WriteAheadLog):
            wal = WriteAheadLog(wal)
        self.wal = wal
        return wal

    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop every memoized artefact (memory pressure relief).

        The next solve re-warms lazily; answers are unaffected.  The
        per-cell level-0 cache is additionally capped at
        :data:`repro.index.gids.CELL_CACHE_CAP` entries per
        ``(width, height, aggregator)`` key, so calling this is only
        needed to reclaim memory across many distinct query shapes.

        Safe to call while other threads are mid-solve (a
        :class:`~repro.engine.pool.SessionPool` evicting under memory
        pressure does exactly that): running solves hold direct
        references to the artefacts they already fetched and recompute
        anything they re-request, so their answers are unchanged.
        """
        with self._memo_lock:
            self._index = None
            self._pins.clear()
            self._compilers.clear()
            self._tables.clear()
            self._table_cells.clear()
            self._contexts.clear()
            self._empty_reps.clear()
            self._reductions.clear()
            self._lattices.clear()
            self._lattice_geometry.clear()
            self._lattice_sums.clear()
            self._cells.clear()
            self._pending_tables.clear()
            self._pending_table_cells.clear()
            self._pending_recipes.clear()
            self._pending_lattices.clear()
            self._pending_lattice_sums.clear()
            # Dropping a non-patchable restored index lifts the mutation
            # block: the next build derives cell sums from the dataset.
            self._nonpatchable_restore = None

    def cache_info(self) -> dict:
        """Occupancy of the session caches (for tests and diagnostics).

        Beyond cache occupancy, reports the session's durability state
        (``epoch``, ``bundle_version``, and -- when a write-ahead log is
        attached -- its path, head epoch, byte size and the number of
        records since the last checkpoint), so ``SessionPool.info()``
        and the service ``/stats`` endpoint can show operators how far
        a restart or a read replica would have to replay.
        """
        wal = self.wal
        return {
            "index_built": self._index is not None,
            "compilers": len(self._compilers),
            "channel_tables": len(self._tables),
            "contexts": len(self._contexts),
            "empty_reps": len(self._empty_reps),
            "reductions": len(self._reductions),
            "lattices": len(self._lattices),
            # list(): solves may insert cell caches concurrently.
            "cached_cells": sum(len(c) for c in list(self._cells.values())),
            "epoch": self.epoch,
            "bundle_version": self.bundle_version,
            "wal": None if wal is None else wal.state(),
        }

    def cache_nbytes(self) -> int:
        """Approximate bytes held by the session caches.

        Drives :class:`~repro.engine.pool.SessionPool` eviction; counts
        the numpy payloads (index tables, channel weights, suffix
        tables, lattice intervals, ASP rectangles, cached cell states)
        and ignores interpreter overhead.
        """
        total = 0
        # Adopted pending artefacts alias their id-keyed entries (the
        # session keeps the signature-keyed reference for later equal-
        # signature aggregators), so each distinct array counts once.
        seen: set = set()

        def arr_bytes(arr) -> int:
            if id(arr) in seen:
                return 0
            seen.add(id(arr))
            return arr.nbytes

        index = self._index
        if index is not None:
            total += index.index_nbytes() + index.xs.nbytes + index.ys.nbytes
        for compiler in list(self._compilers.values()):
            total += compiler.nbytes
        for table in list(self._tables.values()):
            total += arr_bytes(table)
        for cells in list(self._table_cells.values()):
            total += arr_bytes(cells)
        for rep in list(self._empty_reps.values()):
            total += rep.nbytes
        for rects, _ in list(self._reductions.values()):
            total += rects.nbytes
        for lattice in list(self._lattices.values()):
            total += sum(arr_bytes(arr) for arr in lattice)
        for sums in list(self._lattice_sums.values()):
            total += sum(arr_bytes(arr) for arr in sums)
        for cells in list(self._pending_table_cells.values()):
            total += arr_bytes(cells)
        for geometry in list(self._lattice_geometry.values()):
            x0, y0, over_ranges, full_ranges = geometry
            total += arr_bytes(x0) + arr_bytes(y0)
            total += sum(arr_bytes(arr) for arr in over_ranges)
            total += sum(arr_bytes(arr) for arr in full_ranges)
        for table in list(self._pending_tables.values()):
            total += arr_bytes(table)
        for lattice in list(self._pending_lattices.values()):
            total += sum(arr_bytes(arr) for arr in lattice)
        for sums in list(self._pending_lattice_sums.values()):
            total += sum(arr_bytes(arr) for arr in sums)
        for cells in list(self._cells.values()):
            for entry in list(cells.values()):
                if not entry:
                    continue
                active, sub, acc = entry
                total += active.nbytes + sub.nbytes
                total += acc.full.nbytes + acc.over.nbytes + acc.dirty.nbytes
        return total

    def __repr__(self) -> str:
        return (
            f"QuerySession(n={self.dataset.n}, granularity={self.granularity}, "
            f"caches={self.cache_info()})"
        )


# Runtime sanitizer (DESIGN.md §14): enforce the guarded-by
# declarations above when REPRO_SANITIZE=1.
sanitize_class(QuerySession)
