"""Write-ahead logging of :class:`~repro.engine.QuerySession` mutations.

A crashed server used to lose every ``apply``/``append``/``delete``
since its last :func:`~repro.engine.persist.save_session` and had to
rebuild from raw data -- exactly the cold build the engine exists to
avoid.  This module closes that gap (DESIGN.md §10) the way LSM-style
systems do: the in-place-patched index pairs with an append-only
redo log.

:class:`WriteAheadLog` is an append-only file of length-prefixed
records, one per *effective* :class:`~repro.engine.updates.UpdateBatch`.
Each record frame carries the pre-update dataset epoch and row count
plus a CRC-32 over the payload, so a torn tail (a crash mid-write)
is detected and cleanly truncated rather than misread; the payload is
an ``.npz`` blob of the batch's encoded rows, which round-trip
bit-for-bit.  ``QuerySession.apply`` writes through the log *before*
mutating (``session.attach_wal``), under the session's exclusive
update gate, so the log order is the mutation order.

:func:`replay` fast-forwards a :func:`~repro.engine.persist.load_session`
-restored session from its saved epoch to the log head: records older
than the bundle are skipped, the rest are re-applied through the normal
(bitwise-faithful) update path, so the recovered session answers
bitwise-identically to a cold session on the final dataset.  A gap --
the log's oldest record is newer than the bundle -- raises instead of
silently serving a stale index.

Durability policy: every append is flushed to the OS; ``fsync`` is
issued every ``fsync_batch`` records (1 = per-record, the durable
default; larger values amortize group commits).  ``save_session`` on a
WAL-attached session *checkpoints* the log -- records the new bundle
already covers are dropped -- so the bundle + WAL pair stays small and
replayable.
"""

from __future__ import annotations

import io
import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass

import numpy as np

from ..core.atomicio import fsync_dir, replace_atomically
from ..core.objects import SpatialDataset

#: File layout: MAGIC, then ``<II`` (format version, header-meta length),
#: then the header-meta JSON, then records.  Each record frame is
#: ``<IIqq`` (payload length, CRC-32, pre-update epoch, pre-update row
#: count) followed by the payload; the CRC covers the epoch/row-count
#: words and the payload, so any torn or bit-flipped tail fails closed.
WAL_MAGIC = b"REPROWAL"
WAL_VERSION = 1
_FRAME = struct.Struct("<IIqq")
_HEAD = struct.Struct("<II")


@dataclass(frozen=True)
class _AppendToken:
    """Identity of one appended record, for failure rollback."""

    epoch: int
    pre_n: int
    crc: int


@dataclass
class ReplayStats:
    """What one :func:`replay` call did."""

    applied: int = 0
    skipped: int = 0
    truncated_bytes: int = 0
    appended: int = 0
    deleted: int = 0
    final_epoch: int = 0
    pending_tables_patched: int = 0
    lattices_patched: int = 0


def _frame_crc(epoch: int, pre_n: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(struct.pack("<qq", epoch, pre_n)))


def _encode_record(batch, schema) -> bytes:
    """The ``.npz`` payload of one update batch (arrays round-trip bitwise)."""
    append_ds = batch.append_dataset(schema)
    if append_ds is not None and append_ds.schema != schema:
        raise ValueError("WAL record append rows must share the session schema")
    meta = {
        "columns": list(schema.names),
        "append_n": 0 if append_ds is None else append_ds.n,
        "has_delete": batch.delete is not None,
    }
    arrays: dict = {"meta": np.array(json.dumps(meta))}
    if batch.delete is not None:
        arrays["delete"] = np.asarray(batch.delete)
    if append_ds is not None:
        arrays["app_xs"] = append_ds.xs
        arrays["app_ys"] = append_ds.ys
        for name in schema.names:
            arrays[f"app_{name}"] = append_ds.column(name)
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    return buf.getvalue()


def _decode_record(payload: bytes, schema):
    """Invert :func:`_encode_record` against the replaying session's schema."""
    from .updates import UpdateBatch

    with np.load(io.BytesIO(payload), allow_pickle=False) as blob:
        meta = json.loads(str(blob["meta"][()]))
        if meta["columns"] != list(schema.names):
            raise ValueError(
                f"WAL record was written over columns {meta['columns']}, "
                f"but the session schema has {list(schema.names)}"
            )
        delete = blob["delete"] if meta["has_delete"] else None
        append = None
        if meta["append_n"]:
            append = SpatialDataset(
                blob["app_xs"],
                blob["app_ys"],
                schema,
                {name: blob[f"app_{name}"] for name in schema.names},
            )
    return UpdateBatch(append=append, delete=delete)


def _header_bytes(checkpoint_epoch: int = 0) -> bytes:
    """The canonical file header this build writes.

    ``checkpoint_epoch`` records how far the log has been truncated:
    a bundle older than it cannot be replayed from this log *even when
    the log is empty* -- without the marker, an old bundle plus a
    freshly checkpointed (empty) log would silently replay nothing and
    serve pre-update state.
    """
    meta = json.dumps(
        {"log": "repro-session-updates", "checkpoint_epoch": int(checkpoint_epoch)}
    ).encode("utf-8")
    return WAL_MAGIC + _HEAD.pack(WAL_VERSION, len(meta)) + meta


def _read_header(blob: bytes, path) -> tuple:
    """Validate the file header; ``(first record offset, header meta)``."""
    if len(blob) < len(WAL_MAGIC) + _HEAD.size or blob[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise ValueError(f"{path!s} is not a repro write-ahead log (bad magic)")
    version, meta_len = _HEAD.unpack_from(blob, len(WAL_MAGIC))
    if version > WAL_VERSION:
        raise ValueError(
            f"write-ahead log {path!s} has format version {version}; this "
            f"build reads versions up to {WAL_VERSION}.  The log was written "
            "by a newer build -- upgrade to replay it"
        )
    start = len(WAL_MAGIC) + _HEAD.size + meta_len
    if len(blob) < start:
        raise ValueError(f"{path!s} is not a repro write-ahead log (truncated header)")
    try:
        meta = json.loads(blob[len(WAL_MAGIC) + _HEAD.size : start].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise ValueError(f"{path!s} is not a repro write-ahead log (bad header)")
    return start, meta


def _scan(path):
    """``(frames, good_end, torn, header)``: every intact record of the log.

    ``frames`` are ``(epoch, pre_n, payload)`` tuples; ``good_end`` is
    the byte offset just past the last intact record.  ``torn`` is True
    when trailing bytes exist that do not form a complete, CRC-valid
    record -- the signature of a crash mid-append.  Corruption is never
    skipped over: everything after the first bad frame is condemned,
    because a torn length word makes later framing meaningless.
    """
    with open(path, "rb") as fh:
        blob = fh.read()
    offset, header = _read_header(blob, path)
    frames = []
    torn = False
    while offset < len(blob):
        if offset + _FRAME.size > len(blob):
            torn = True
            break
        length, crc, epoch, pre_n = _FRAME.unpack_from(blob, offset)
        payload = blob[offset + _FRAME.size : offset + _FRAME.size + length]
        if len(payload) < length or _frame_crc(epoch, pre_n, payload) != crc:
            torn = True
            break
        frames.append((epoch, pre_n, payload))
        offset += _FRAME.size + length
    return frames, offset, torn, header


class WriteAheadLog:
    """An append-only, CRC-framed log of session update batches.

    Parameters
    ----------
    path:
        Log file; created (with its header) on the first append.
    fsync_batch:
        ``os.fsync`` is issued once per this many appended records.
        1 (the default) makes every committed update durable before
        ``apply`` returns; larger values trade a bounded tail-loss
        window for group-commit throughput.  :meth:`sync` forces the
        pending fsync at any time.

    Thread-safety: appends, checkpoints and scans serialize on an
    internal lock; the writing side is additionally serialized by the
    session's exclusive update gate.
    """

    def __init__(self, path, fsync_batch: int = 1) -> None:
        if fsync_batch < 1:
            raise ValueError("fsync_batch must be >= 1")
        self.path = os.fspath(path)
        self.fsync_batch = int(fsync_batch)
        self._lock = threading.Lock()
        self._fh = None
        self._unsynced = 0
        # The epoch the next appended record must carry: last record's
        # pre-epoch + 1, or the checkpoint marker of an empty log.
        # Computed from the open-time scan; None until first use.
        self._head_epoch: int | None = None
        # True only for a log file this object just created: its first
        # append adopts the session's epoch as the baseline.
        self._adopt_head = False

    # ------------------------------------------------------------------
    def _drop_handle(self) -> None:
        """Close the append handle (callers hold the lock).

        Any code path that changes the file through a *different*
        handle (rollback, checkpoint, reset) must drop this one: an
        O_APPEND write still lands at the real end-of-file, but the
        buffered handle's tell() goes stale, corrupting later
        offset-based bookkeeping.
        """
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None
            self._unsynced = 0

    def _open(self):
        """The append handle, creating file + header on first use.

        An existing log is scanned first: any torn tail (a previous
        crash mid-append) is truncated away -- appending past garbage
        would leave every new, fsync-acknowledged record unreplayable,
        since a scan condemns everything after the first bad frame --
        and the scan establishes the log's head epoch, which
        :meth:`append` enforces.
        """
        if self._fh is None:
            exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
            if exists:
                frames, good_end, torn, header = _scan(self.path)
                if torn:
                    with open(self.path, "r+b") as fh:
                        fh.truncate(good_end)
                        os.fsync(fh.fileno())
                self._head_epoch = (
                    frames[-1][0] + 1
                    if frames
                    else int(header.get("checkpoint_epoch", 0))
                )
                self._adopt_head = False
            else:
                # A brand-new log has no history to protect: the first
                # append *adopts* its epoch as the baseline (a session
                # restored from an epoch>0 bundle legitimately starts
                # a fresh log there).
                self._head_epoch = 0
                self._adopt_head = True
            self._fh = open(self.path, "ab")
            if not exists:
                self._fh.write(_header_bytes())
                self._fh.flush()
                os.fsync(self._fh.fileno())
                # Per-record fsyncs are useless if the *directory entry*
                # of the just-created file is not durable too.
                fsync_dir(os.path.dirname(os.path.abspath(self.path)) or ".")
        return self._fh

    def append(self, batch, *, epoch: int, pre_n: int, schema) -> "_AppendToken":
        """Durably log one batch about to be applied at ``epoch``.

        Called by the update path *before* any session state mutates
        (write-ahead): a crash after this point replays the batch, a
        crash before it loses nothing but an unacknowledged request.
        ``epoch`` must equal the log's head epoch -- appending from a
        session that never replayed an existing log would shadow the
        logged history and silently lose the new records at the next
        recovery, so that raises instead.  Returns a token a *failed*
        apply passes to :meth:`rollback` so its record does not become
        an orphan a later replay would wrongly apply.
        """
        payload = _encode_record(batch, schema)
        crc = _frame_crc(epoch, pre_n, payload)
        frame = _FRAME.pack(len(payload), crc, epoch, pre_n)
        with self._lock:
            fh = self._open()
            if self._adopt_head and epoch != self._head_epoch:
                # First append to a freshly created log: adopt its epoch
                # as the baseline.  The marker is durably rewritten
                # first, so replay fails closed for bundles older than
                # the baseline even if this record is later rolled back.
                self._drop_handle()
                replace_atomically(
                    self.path, lambda out: out.write(_header_bytes(epoch))
                )
                fh = open(self.path, "ab")
                self._fh = fh
                self._head_epoch = epoch
            elif epoch != self._head_epoch:
                raise ValueError(
                    f"appending to {self.path!s} at epoch {epoch} but the "
                    f"log head expects epoch {self._head_epoch}; if the "
                    "session predates records in this log, replay it first "
                    "(engine.wal.replay); if this log belongs to a "
                    "different baseline, start a fresh one"
                )
            self._adopt_head = False
            start = fh.tell()
            try:
                fh.write(frame + payload)
                fh.flush()
            except BaseException:
                # A partial write (ENOSPC and friends) is a torn frame
                # in the *middle* once later appends succeed; close the
                # handle and truncate back so the log ends at the last
                # good record.  Every cleanup step is best-effort: the
                # same full disk that broke the write can break a flush
                # here, and the handle must still be dropped so a later
                # append cannot land after torn bytes.
                try:
                    fh.close()
                except OSError:
                    pass
                self._fh = None
                self._unsynced = 0
                try:
                    with open(self.path, "r+b") as rf:
                        rf.truncate(start)
                        os.fsync(rf.fileno())
                except OSError:
                    pass
                raise
            self._unsynced += 1
            if self._unsynced >= self.fsync_batch:
                os.fsync(fh.fileno())
                self._unsynced = 0
            self._head_epoch = epoch + 1
            return _AppendToken(epoch, pre_n, crc)

    def rollback(self, token: "_AppendToken") -> None:
        """Remove the record ``token``'s :meth:`append` wrote, if present.

        Used when the update an appended record announced *failed*
        before committing: the record must not survive, or replay
        would apply a batch the live session never did -- and then
        skip the genuinely applied batch logged at the same epoch.
        Identity-based rather than offset-based: a concurrent
        checkpoint may have rewritten the file (shifting offsets), so
        the log is scanned and its final record dropped only when it
        matches the token.  The caller holds the session's exclusive
        update gate, so no later record can have been appended.
        """
        with self._lock:
            self._drop_handle()
            if not os.path.exists(self.path) or os.path.getsize(self.path) == 0:
                return
            frames, good_end, torn, _ = _scan(self.path)
            if frames:
                epoch, pre_n, payload = frames[-1]
                if (epoch, pre_n) == (token.epoch, token.pre_n) and (
                    _frame_crc(epoch, pre_n, payload) == token.crc
                ):
                    good_end -= _FRAME.size + len(payload)
                    self._head_epoch = epoch
            # Truncating at good_end also sheds any torn tail bytes.
            with open(self.path, "r+b") as fh:
                fh.truncate(good_end)
                os.fsync(fh.fileno())

    def sync(self) -> None:
        """Force the pending group-commit fsync."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._unsynced = 0

    def close(self) -> None:
        with self._lock:
            self._drop_handle()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def records(self, schema) -> list:
        """``(epoch, pre_n, UpdateBatch)`` for every intact record.

        A read-only scan (tests, diagnostics); the torn tail, if any,
        is ignored but not repaired -- :func:`replay` repairs.
        """
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
            if not os.path.exists(self.path):
                return []
            frames, _, _, _ = _scan(self.path)
        return [
            (epoch, pre_n, _decode_record(payload, schema))
            for epoch, pre_n, payload in frames
        ]

    def checkpoint(self, epoch: int) -> int:
        """Drop records a bundle saved at ``epoch`` already covers.

        Rewrites the log keeping only records with pre-update epoch
        ``>= epoch`` (atomic fsynced temp + rename, so a crash
        mid-checkpoint leaves the old log intact); any torn tail is
        dropped with them, and the header records the checkpoint epoch.
        Returns the number of records removed.  After a checkpoint,
        bundles saved *before* ``epoch`` can no longer be replayed from
        this log -- :func:`replay` detects that as a gap, via the first
        surviving record or, when none survive, the header marker.
        """
        with self._lock:
            self._drop_handle()
            if not os.path.exists(self.path) or os.path.getsize(self.path) == 0:
                return 0
            frames, good_end, torn, header = _scan(self.path)
            marker = max(int(header.get("checkpoint_epoch", 0)), int(epoch))
            kept = [f for f in frames if f[0] >= epoch]
            if (
                len(kept) == len(frames)
                and not torn
                and marker == header.get("checkpoint_epoch", 0)
            ):
                return 0

            def write(fh) -> None:
                fh.write(_header_bytes(marker))
                for rec_epoch, pre_n, payload in kept:
                    fh.write(
                        _FRAME.pack(
                            len(payload),
                            _frame_crc(rec_epoch, pre_n, payload),
                            rec_epoch,
                            pre_n,
                        )
                        + payload
                    )

            replace_atomically(self.path, write)
            return len(frames) - len(kept)

    def reset(self) -> int:
        """Restart the log as a fresh epoch-0 baseline (drops everything).

        For when the *dataset itself* has been re-saved as the new
        baseline (``repro update --wal --save-data`` without a bundle):
        a CSV carries no epoch, so the next cold session over it starts
        at epoch 0 and must see a log that starts there too -- a
        :meth:`checkpoint` marker at the old epoch would fail it closed
        even though the CSV embodies every logged update.  Returns the
        number of records dropped.
        """
        with self._lock:
            self._drop_handle()
            self._head_epoch = 0
            if not os.path.exists(self.path) or os.path.getsize(self.path) == 0:
                return 0
            frames, _, _, _ = _scan(self.path)
            replace_atomically(self.path, lambda fh: fh.write(_header_bytes()))
            return len(frames)

    def __repr__(self) -> str:
        size = os.path.getsize(self.path) if os.path.exists(self.path) else 0
        return f"WriteAheadLog({self.path!r}, bytes={size})"


def replay(session, wal, *, repair: bool = True) -> ReplayStats:
    """Fast-forward a restored session from its saved epoch to the log head.

    ``session`` is typically fresh from
    :func:`~repro.engine.persist.load_session`; ``wal`` is a
    :class:`WriteAheadLog` or a path.  Records the bundle already covers
    (pre-update epoch below the session's) are skipped; the rest are
    re-applied through the normal update path, so the recovered session
    is bitwise-identical to a cold session on the final dataset -- and,
    for a format-v3 bundle, no cold channel-table rebuild happens along
    the way (pending per-compiler cell sums are patched in place).

    A torn tail (crash mid-append) is truncated off the file when
    ``repair`` is True (the default) and never raises.  A *gap* -- the
    log's oldest surviving record is newer than the bundle, i.e. the log
    was checkpointed past it -- raises ``ValueError``, as does a
    row-count mismatch (bundle and log from different lineages).

    Replay never writes to the log, even when ``session`` has this WAL
    attached, so attach-then-replay is the natural recovery sequence.
    """
    from .updates import apply_update

    if isinstance(wal, WriteAheadLog):
        wal.sync()
        path = wal.path
    else:
        path = os.fspath(wal)
    stats = ReplayStats(final_epoch=session.epoch)
    if not os.path.exists(path) or os.path.getsize(path) == 0:
        return stats
    frames, good_end, torn, header = _scan(path)
    checkpoint_epoch = int(header.get("checkpoint_epoch", 0))
    if checkpoint_epoch > session.epoch:
        # Even with no surviving records the marker fails closed: an
        # old bundle plus a checkpointed (possibly empty) log would
        # otherwise silently replay nothing and serve stale state.
        raise ValueError(
            f"write-ahead log {path!s} was checkpointed at epoch "
            f"{checkpoint_epoch} but the session is at epoch "
            f"{session.epoch}: records this bundle needs were truncated.  "
            "Restore from the bundle (and dataset) saved at that "
            "checkpoint, or rebuild with `repro index-build`"
        )
    if torn:
        stats.truncated_bytes = os.path.getsize(path) - good_end
        if repair:
            with open(path, "r+b") as fh:
                fh.truncate(good_end)
    schema = session.dataset.schema
    for epoch, pre_n, payload in frames:
        if epoch < session.epoch:
            stats.skipped += 1
            continue
        if epoch > session.epoch:
            raise ValueError(
                f"write-ahead log {path!s} starts at epoch {epoch} but the "
                f"session is at epoch {session.epoch}: the log was "
                "checkpointed past this bundle.  Restore from the bundle "
                "saved at that checkpoint (or rebuild with `repro index-build`)"
            )
        if pre_n != session.dataset.n:
            raise ValueError(
                f"write-ahead log {path!s} record at epoch {epoch} expects "
                f"{pre_n} rows but the session dataset has "
                f"{session.dataset.n}: bundle and log are from different "
                "dataset lineages.  If the dataset file was re-saved after "
                "these records were applied (e.g. a crash between "
                "--save-data and the WAL checkpoint), the records are "
                "already reflected in it and the log can safely be deleted"
            )
        batch = _decode_record(payload, schema)
        ustats = apply_update(session, batch, log=False)
        stats.applied += 1
        stats.appended += ustats.appended
        stats.deleted += ustats.deleted
        stats.pending_tables_patched += ustats.pending_tables_patched
        stats.lattices_patched += ustats.lattices_patched
    stats.final_epoch = session.epoch
    return stats
