"""Write-ahead logging of :class:`~repro.engine.QuerySession` mutations.

A crashed server used to lose every ``apply``/``append``/``delete``
since its last :func:`~repro.engine.persist.save_session` and had to
rebuild from raw data -- exactly the cold build the engine exists to
avoid.  This module closes that gap (DESIGN.md §10) the way LSM-style
systems do: the in-place-patched index pairs with an append-only
redo log.

:class:`WriteAheadLog` is an append-only file of length-prefixed
records, one per *effective* :class:`~repro.engine.updates.UpdateBatch`.
Each record frame carries the pre-update dataset epoch and row count
plus a CRC-32 over the payload, so a torn tail (a crash mid-write)
is detected and cleanly truncated rather than misread; the payload is
an ``.npz`` blob of the batch's encoded rows, which round-trip
bit-for-bit.  ``QuerySession.apply`` writes through the log *before*
mutating (``session.attach_wal``), under the session's exclusive
update gate, so the log order is the mutation order.

:func:`replay` fast-forwards a :func:`~repro.engine.persist.load_session`
-restored session from its saved epoch to the log head: records older
than the bundle are skipped, the rest are composed into one equivalent
batch and re-applied through the normal (bitwise-faithful) update path
in a single index patch, so the recovered session answers
bitwise-identically to a cold session on the final dataset at the cost
of one update.  A gap --
the log's oldest record is newer than the bundle -- raises instead of
silently serving a stale index.

Durability policy: every append is flushed to the OS; ``fsync`` is
issued every ``fsync_batch`` records (1 = per-record, the durable
default; larger values amortize group commits).  ``save_session`` on a
WAL-attached session *checkpoints* the log -- records the new bundle
already covers are dropped -- so the bundle + WAL pair stays small and
replayable.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import IO, TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

from .. import faults
from ..analysis.sanitizer import make_lock, sanitize_class
from ..core.atomicio import fsync_dir, replace_atomically
from ..core.attributes import Schema
from ..core.objects import SpatialDataset

if TYPE_CHECKING:  # circular at runtime: updates.py imports this module
    from .session import QuerySession
    from .updates import UpdateBatch

#: Failpoints at the WAL's own commit boundaries (DESIGN.md §12).
#: ``frame-write`` sits where a torn frame lands on real storage;
#: ``crc`` simulates corruption detected while framing; ``truncate``
#: fires before checkpoint rewrites the log; ``rollback`` simulates the
#: repair path itself failing (the one fault that leaves log and
#: session out of agreement).
FP_APPEND_CRC = faults.register("wal.append.crc")
FP_APPEND_FRAME = faults.register("wal.append.frame-write")
FP_CHECKPOINT_TRUNCATE = faults.register("wal.checkpoint.truncate")
FP_ROLLBACK = faults.register("wal.rollback")


class WalWriteError(RuntimeError):
    """A WAL append failed: nothing was applied, nothing acknowledged.

    The serving layer maps this to a *degraded* dataset -- queries keep
    serving the last applied epoch, mutations are refused with the
    cause -- rather than retrying into a log of unknown state.
    """


class WalRollbackError(RuntimeError):
    """Rolling back a logged-but-unapplied record failed.

    The log now holds a record the session never applied; a later
    replay would wrongly apply it.  The serving layer treats this as
    *failed* (mutations, checkpoints and compactions all refused) until
    an explicit recover replays log and session back into agreement.
    """

#: File layout: MAGIC, then ``<II`` (format version, header-meta length),
#: then the header-meta JSON, then records.  Each record frame is
#: ``<IIqq`` (payload length, CRC-32, pre-update epoch, pre-update row
#: count) followed by the payload; the CRC covers the epoch/row-count
#: words and the payload, so any torn or bit-flipped tail fails closed.
WAL_MAGIC = b"REPROWAL"
WAL_VERSION = 1
_FRAME = struct.Struct("<IIqq")
_HEAD = struct.Struct("<II")


@dataclass(frozen=True)
class _AppendToken:
    """Identity of one appended record, for failure rollback."""

    epoch: int
    pre_n: int
    crc: int


@dataclass
class ReplayStats:
    """What one :func:`replay` call did.

    ``applied`` counts **source records** the replay covered, even
    though the pending tail is coalesced and applied through one index
    patch; ``appended``/``deleted`` are the *net* row counts of the
    coalesced batch (a row appended then deleted within the tail
    contributes to neither).
    """

    applied: int = 0
    skipped: int = 0
    truncated_bytes: int = 0
    appended: int = 0
    deleted: int = 0
    final_epoch: int = 0
    pending_tables_patched: int = 0
    lattices_patched: int = 0


@dataclass
class CompactStats:
    """What one :meth:`WriteAheadLog.compact` call did."""

    records_before: int = 0
    records_after: int = 0
    merged: int = 0
    base_epoch: int = 0
    head_epoch: int = 0
    bytes_before: int = 0
    bytes_after: int = 0


def _frame_crc(epoch: int, pre_n: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(struct.pack("<qq", epoch, pre_n)))


def _encode_record(batch: "UpdateBatch", schema: Schema, span: int = 1) -> bytes:
    """The ``.npz`` payload of one update batch (arrays round-trip bitwise).

    ``span`` > 1 marks a record produced by :meth:`WriteAheadLog.compact`
    that stands in for that many original single-epoch records; replay
    uses it to fail closed when a bundle's epoch falls *inside* the
    merged span (the merged record can neither be skipped nor applied
    for such a bundle).
    """
    append_ds = batch.append_dataset(schema)
    if append_ds is not None and append_ds.schema != schema:
        raise ValueError("WAL record append rows must share the session schema")
    meta = {
        "columns": list(schema.names),
        "append_n": 0 if append_ds is None else append_ds.n,
        "has_delete": batch.delete is not None,
    }
    if span != 1:
        meta["span"] = int(span)
    # repro: ignore[RPL004] -- npz member metadata (ints/strings only),
    # part of the WAL's binary frame format, not the serving codec
    arrays: dict = {"meta": np.array(json.dumps(meta))}
    if batch.delete is not None:
        arrays["delete"] = np.asarray(batch.delete)
    if append_ds is not None:
        arrays["app_xs"] = append_ds.xs
        arrays["app_ys"] = append_ds.ys
        for name in schema.names:
            arrays[f"app_{name}"] = append_ds.column(name)
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    return buf.getvalue()


def _payload_span(payload: bytes) -> int:
    """The epoch span of a record payload (1 unless written by compact).

    A span-``s`` record at epoch ``e`` stands for the original records
    at epochs ``[e, e+s)``: applying it advances a session from ``e``
    straight to ``e + s``, and the record *after* it (if any) carries
    epoch ``e + s``.  Epoch numbering is therefore stable across
    compaction -- replicas and bundles that reference the old numbers
    keep working.
    """
    with np.load(io.BytesIO(payload), allow_pickle=False) as blob:
        meta = json.loads(str(blob["meta"][()]))
    return int(meta.get("span", 1))


def _keep_mask(
    n: int, mask_or_indices: "np.ndarray | Sequence[int]"
) -> np.ndarray:
    """Boolean keep-mask over ``n`` rows for a delete selection.

    Mirrors :meth:`SpatialDataset.delete_mask` so compaction can compose
    delete selections without materializing intermediate datasets.
    """
    sel = np.asarray(mask_or_indices)
    keep = np.ones(n, dtype=bool)
    if sel.dtype == bool:
        if sel.shape != (n,):
            raise ValueError(f"delete mask has shape {sel.shape}, expected ({n},)")
        keep[sel] = False
    else:
        if sel.size and (sel.min() < -n or sel.max() >= n):
            raise IndexError(f"delete index out of range for dataset of {n} rows")
        keep[sel] = False
    return keep


def _compose_frames(
    frames: "Sequence[Tuple[int, int, bytes]]",
    schema: Schema,
    path: str,
) -> "Tuple[UpdateBatch, int]":
    """Compose contiguous record frames into one equivalent batch.

    The returned batch, applied to the dataset at the first frame's
    epoch, yields the bitwise-identical final dataset: deletes preserve
    row order and appends land at the end, so surviving original rows
    and surviving appended rows each keep their relative order -- the
    merged batch deletes the originals that did not survive and appends
    the appended rows that did, in order.  The returned span sums the
    input spans (inputs may themselves be prior compactions' merges),
    so applying the batch stands for advancing through every input
    epoch.  Shared by :meth:`WriteAheadLog.compact` (rewrite the log as
    one record) and :func:`replay` (apply the whole pending tail
    through one index patch).
    """
    from .updates import UpdateBatch

    base_epoch, base_n = frames[0][0], frames[0][1]
    # Compose the record sequence over a row-provenance array:
    # entries < base_n are original rows, entries >= base_n
    # index into the concatenation of all appended datasets.
    src = np.arange(base_n, dtype=np.int64)
    appends: "list[SpatialDataset]" = []
    app_total = 0
    expected_epoch = base_epoch
    for epoch, pre_n, payload in frames:
        if epoch != expected_epoch:
            raise ValueError(
                f"cannot compose records of {path!s}: record epochs are "
                f"not contiguous (expected {expected_epoch}, got {epoch})"
            )
        if pre_n != src.size:
            raise ValueError(
                f"cannot compose records of {path!s}: record at epoch "
                f"{epoch} expects {pre_n} rows but the composed "
                f"state has {src.size} -- the log is internally "
                "inconsistent"
            )
        batch = _decode_record(payload, schema)
        # A record may itself be a prior compaction's merge: its
        # span counts toward the new total, or a bundle inside
        # the *old* span would slip past the straddle check.
        expected_epoch = epoch + _payload_span(payload)
        if batch.delete is not None:
            src = src[_keep_mask(src.size, batch.delete)]
        app_ds = batch.append_dataset(schema)
        if app_ds is not None and app_ds.n:
            appends.append(app_ds)
            src = np.concatenate(
                [
                    src,
                    base_n + app_total + np.arange(app_ds.n, dtype=np.int64),
                ]
            )
            app_total += app_ds.n

    kept_originals = src[src < base_n]
    delete_idx = np.setdiff1d(np.arange(base_n, dtype=np.int64), kept_originals)
    surviving_app = src[src >= base_n] - base_n
    merged_append = None
    if surviving_app.size:
        app_concat = appends[0]
        for extra in appends[1:]:
            app_concat = app_concat.append(extra)
        merged_append = app_concat.subset(surviving_app)
    merged = UpdateBatch(
        append=merged_append,
        delete=delete_idx if delete_idx.size else None,
    )
    return merged, expected_epoch - base_epoch


def _decode_record(payload: bytes, schema: Schema) -> "UpdateBatch":
    """Invert :func:`_encode_record` against the replaying session's schema."""
    from .updates import UpdateBatch

    with np.load(io.BytesIO(payload), allow_pickle=False) as blob:
        meta = json.loads(str(blob["meta"][()]))
        if meta["columns"] != list(schema.names):
            raise ValueError(
                f"WAL record was written over columns {meta['columns']}, "
                f"but the session schema has {list(schema.names)}"
            )
        delete = blob["delete"] if meta["has_delete"] else None
        append = None
        if meta["append_n"]:
            append = SpatialDataset(
                blob["app_xs"],
                blob["app_ys"],
                schema,
                {name: blob[f"app_{name}"] for name in schema.names},
            )
    return UpdateBatch(append=append, delete=delete)


def _header_bytes(checkpoint_epoch: int = 0) -> bytes:
    """The canonical file header this build writes.

    ``checkpoint_epoch`` records how far the log has been truncated:
    a bundle older than it cannot be replayed from this log *even when
    the log is empty* -- without the marker, an old bundle plus a
    freshly checkpointed (empty) log would silently replay nothing and
    serve pre-update state.
    """
    # repro: ignore[RPL004] -- file-header metadata (a string and an int),
    # part of the WAL's binary frame format, not the serving codec
    meta = json.dumps(
        {"log": "repro-session-updates", "checkpoint_epoch": int(checkpoint_epoch)}
    ).encode("utf-8")
    return WAL_MAGIC + _HEAD.pack(WAL_VERSION, len(meta)) + meta


def _read_header(blob: bytes, path: str) -> Tuple[int, dict]:
    """Validate the file header; ``(first record offset, header meta)``."""
    if len(blob) < len(WAL_MAGIC) + _HEAD.size or blob[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise ValueError(f"{path!s} is not a repro write-ahead log (bad magic)")
    version, meta_len = _HEAD.unpack_from(blob, len(WAL_MAGIC))
    if version > WAL_VERSION:
        raise ValueError(
            f"write-ahead log {path!s} has format version {version}; this "
            f"build reads versions up to {WAL_VERSION}.  The log was written "
            "by a newer build -- upgrade to replay it"
        )
    start = len(WAL_MAGIC) + _HEAD.size + meta_len
    if len(blob) < start:
        raise ValueError(f"{path!s} is not a repro write-ahead log (truncated header)")
    try:
        meta = json.loads(blob[len(WAL_MAGIC) + _HEAD.size : start].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise ValueError(f"{path!s} is not a repro write-ahead log (bad header)")
    return start, meta


def _scan(path: str) -> Tuple[list, int, bool, dict]:
    """``(frames, good_end, torn, header)``: every intact record of the log.

    ``frames`` are ``(epoch, pre_n, payload)`` tuples; ``good_end`` is
    the byte offset just past the last intact record.  ``torn`` is True
    when trailing bytes exist that do not form a complete, CRC-valid
    record -- the signature of a crash mid-append.  Corruption is never
    skipped over: everything after the first bad frame is condemned,
    because a torn length word makes later framing meaningless.
    """
    with open(path, "rb") as fh:
        blob = fh.read()
    offset, header = _read_header(blob, path)
    frames: "list[tuple[int, int, bytes]]" = []
    torn = False
    while offset < len(blob):
        if offset + _FRAME.size > len(blob):
            torn = True
            break
        length, crc, epoch, pre_n = _FRAME.unpack_from(blob, offset)
        payload = blob[offset + _FRAME.size : offset + _FRAME.size + length]
        if len(payload) < length or _frame_crc(epoch, pre_n, payload) != crc:
            torn = True
            break
        frames.append((epoch, pre_n, payload))
        offset += _FRAME.size + length
    return frames, offset, torn, header


class WriteAheadLog:
    """An append-only, CRC-framed log of session update batches.

    Parameters
    ----------
    path:
        Log file; created (with its header) on the first append.
    fsync_batch:
        ``os.fsync`` is issued once per this many appended records.
        1 (the default) makes every committed update durable before
        ``apply`` returns; larger values trade a bounded tail-loss
        window for group-commit throughput.  :meth:`sync` forces the
        pending fsync at any time.

    Thread-safety: appends, checkpoints and scans serialize on an
    internal lock; the writing side is additionally serialized by the
    session's exclusive update gate.
    """

    def __init__(
        self, path: "str | os.PathLike[str]", fsync_batch: int = 1
    ) -> None:
        if fsync_batch < 1:
            raise ValueError("fsync_batch must be >= 1")
        self.path = os.fspath(path)
        self.fsync_batch = int(fsync_batch)
        self._lock = make_lock("WriteAheadLog._lock")
        self._fh: Optional[IO[bytes]] = None  # guarded-by: _lock
        self._unsynced = 0  # guarded-by: _lock
        # The epoch the next appended record must carry: last record's
        # pre-epoch + 1, or the checkpoint marker of an empty log.
        # Computed from the open-time scan; None until first use.
        self._head_epoch: int | None = None  # guarded-by: _lock
        # Intact record count and header checkpoint marker, kept in step
        # with every append/rollback/checkpoint/reset/compact so
        # :meth:`state` (the durability signal policy checkpoints key
        # off, called after every update) never re-reads the file on
        # the hot path.  None until the first open-time scan.
        self._records: int | None = None  # guarded-by: _lock
        self._checkpoint_epoch: int | None = None  # guarded-by: _lock
        # True only for a log file this object just created: its first
        # append adopts the session's epoch as the baseline.
        self._adopt_head = False  # guarded-by: _lock

    # ------------------------------------------------------------------
    def _drop_handle(self) -> None:  # guarded-by: _lock
        """Close the append handle (callers hold the lock).

        Any code path that changes the file through a *different*
        handle (rollback, checkpoint, reset) must drop this one: an
        O_APPEND write still lands at the real end-of-file, but the
        buffered handle's tell() goes stale, corrupting later
        offset-based bookkeeping.
        """
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None
            self._unsynced = 0

    def _open(self) -> IO[bytes]:  # guarded-by: _lock
        """The append handle, creating file + header on first use.

        An existing log is scanned first: any torn tail (a previous
        crash mid-append) is truncated away -- appending past garbage
        would leave every new, fsync-acknowledged record unreplayable,
        since a scan condemns everything after the first bad frame --
        and the scan establishes the log's head epoch, which
        :meth:`append` enforces.
        """
        if self._fh is None:
            exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
            if exists:
                frames, good_end, torn, header = _scan(self.path)
                if torn:
                    with open(self.path, "r+b") as fh:
                        fh.truncate(good_end)
                        os.fsync(fh.fileno())
                # The last record's span decides the head: a compacted
                # record at epoch e spanning s epochs is followed by
                # epoch e + s, not e + 1.
                self._head_epoch = (
                    frames[-1][0] + _payload_span(frames[-1][2])
                    if frames
                    else int(header.get("checkpoint_epoch", 0))
                )
                self._records = len(frames)
                self._checkpoint_epoch = int(header.get("checkpoint_epoch", 0))
                self._adopt_head = False
            else:
                # A brand-new log has no history to protect: the first
                # append *adopts* its epoch as the baseline (a session
                # restored from an epoch>0 bundle legitimately starts
                # a fresh log there).
                self._head_epoch = 0
                self._records = 0
                self._checkpoint_epoch = 0
                self._adopt_head = True
            self._fh = open(self.path, "ab")
            if not exists:
                self._fh.write(_header_bytes())
                self._fh.flush()
                os.fsync(self._fh.fileno())
                # Per-record fsyncs are useless if the *directory entry*
                # of the just-created file is not durable too.
                fsync_dir(os.path.dirname(os.path.abspath(self.path)) or ".")
        return self._fh

    def append(
        self,
        batch: "UpdateBatch",
        *,
        epoch: int,
        pre_n: int,
        schema: Schema,
    ) -> "_AppendToken":
        """Durably log one batch about to be applied at ``epoch``.

        Called by the update path *before* any session state mutates
        (write-ahead): a crash after this point replays the batch, a
        crash before it loses nothing but an unacknowledged request.
        ``epoch`` must equal the log's head epoch -- appending from a
        session that never replayed an existing log would shadow the
        logged history and silently lose the new records at the next
        recovery, so that raises instead.  Returns a token a *failed*
        apply passes to :meth:`rollback` so its record does not become
        an orphan a later replay would wrongly apply.
        """
        payload = _encode_record(batch, schema)
        crc = _frame_crc(epoch, pre_n, payload)
        faults.failpoint(FP_APPEND_CRC)
        frame = _FRAME.pack(len(payload), crc, epoch, pre_n)
        with self._lock:
            fh = self._open()
            if self._adopt_head and epoch != self._head_epoch:
                # First append to a freshly created log: adopt its epoch
                # as the baseline.  The marker is durably rewritten
                # first, so replay fails closed for bundles older than
                # the baseline even if this record is later rolled back.
                self._drop_handle()
                replace_atomically(
                    self.path, lambda out: out.write(_header_bytes(epoch))
                )
                fh = open(self.path, "ab")
                self._fh = fh
                self._head_epoch = epoch
                self._checkpoint_epoch = epoch
            elif epoch != self._head_epoch:
                raise ValueError(
                    f"appending to {self.path!s} at epoch {epoch} but the "
                    f"log head expects epoch {self._head_epoch}; if the "
                    "session predates records in this log, replay it first "
                    "(engine.wal.replay); if this log belongs to a "
                    "different baseline, start a fresh one"
                )
            self._adopt_head = False
            start = fh.tell()
            try:
                faults.failpoint(FP_APPEND_FRAME, fh=fh, data=frame + payload)
                fh.write(frame + payload)
                fh.flush()
            except BaseException:
                # A partial write (ENOSPC and friends) is a torn frame
                # in the *middle* once later appends succeed; close the
                # handle and truncate back so the log ends at the last
                # good record.  Every cleanup step is best-effort: the
                # same full disk that broke the write can break a flush
                # here, and the handle must still be dropped so a later
                # append cannot land after torn bytes.
                try:
                    fh.close()
                except OSError:
                    pass
                self._fh = None
                self._unsynced = 0
                try:
                    with open(self.path, "r+b") as rf:
                        rf.truncate(start)
                        os.fsync(rf.fileno())
                except OSError:
                    pass
                raise
            self._unsynced += 1
            if self._unsynced >= self.fsync_batch:
                os.fsync(fh.fileno())
                self._unsynced = 0
            self._head_epoch = epoch + 1
            if self._records is not None:
                self._records += 1
            return _AppendToken(epoch, pre_n, crc)

    def rollback(self, token: "_AppendToken") -> None:
        """Remove the record ``token``'s :meth:`append` wrote, if present.

        Used when the update an appended record announced *failed*
        before committing: the record must not survive, or replay
        would apply a batch the live session never did -- and then
        skip the genuinely applied batch logged at the same epoch.
        Identity-based rather than offset-based: a concurrent
        checkpoint may have rewritten the file (shifting offsets), so
        the log is scanned and its final record dropped only when it
        matches the token.  The caller holds the session's exclusive
        update gate, so no later record can have been appended.
        """
        with self._lock:
            faults.failpoint(FP_ROLLBACK)
            self._drop_handle()
            if not os.path.exists(self.path) or os.path.getsize(self.path) == 0:
                return
            frames, good_end, torn, _ = _scan(self.path)
            n_kept = len(frames)
            if frames:
                epoch, pre_n, payload = frames[-1]
                if (epoch, pre_n) == (token.epoch, token.pre_n) and (
                    _frame_crc(epoch, pre_n, payload) == token.crc
                ):
                    good_end -= _FRAME.size + len(payload)
                    self._head_epoch = epoch
                    n_kept -= 1
            self._records = n_kept
            # Truncating at good_end also sheds any torn tail bytes.
            with open(self.path, "r+b") as fh:
                fh.truncate(good_end)
                os.fsync(fh.fileno())

    def sync(self) -> None:
        """Force the pending group-commit fsync."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._unsynced = 0

    def close(self) -> None:
        with self._lock:
            self._drop_handle()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def records(self, schema: Schema) -> list:
        """``(epoch, pre_n, UpdateBatch)`` for every intact record.

        A read-only scan (tests, diagnostics); the torn tail, if any,
        is ignored but not repaired -- :func:`replay` repairs.
        """
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
            if not os.path.exists(self.path):
                return []
            frames, _, _, _ = _scan(self.path)
        return [
            (epoch, pre_n, _decode_record(payload, schema))
            for epoch, pre_n, payload in frames
        ]

    def checkpoint(self, epoch: int) -> int:
        """Drop records a bundle saved at ``epoch`` already covers.

        Rewrites the log keeping only records with pre-update epoch
        ``>= epoch`` (atomic fsynced temp + rename, so a crash
        mid-checkpoint leaves the old log intact); any torn tail is
        dropped with them, and the header records the checkpoint epoch.
        Returns the number of records removed.  After a checkpoint,
        bundles saved *before* ``epoch`` can no longer be replayed from
        this log -- :func:`replay` detects that as a gap, via the first
        surviving record or, when none survive, the header marker.
        """
        with self._lock:
            self._drop_handle()
            if not os.path.exists(self.path) or os.path.getsize(self.path) == 0:
                return 0
            frames, good_end, torn, header = _scan(self.path)
            marker = max(int(header.get("checkpoint_epoch", 0)), int(epoch))
            kept = [f for f in frames if f[0] >= epoch]
            if (
                len(kept) == len(frames)
                and not torn
                and marker == header.get("checkpoint_epoch", 0)
            ):
                return 0

            def write(fh: IO[bytes]) -> None:
                fh.write(_header_bytes(marker))
                for rec_epoch, pre_n, payload in kept:
                    fh.write(
                        _FRAME.pack(
                            len(payload),
                            _frame_crc(rec_epoch, pre_n, payload),
                            rec_epoch,
                            pre_n,
                        )
                        + payload
                    )

            faults.failpoint(FP_CHECKPOINT_TRUNCATE)
            replace_atomically(self.path, write)
            self._records = len(kept)
            self._checkpoint_epoch = marker
            if not kept:
                self._head_epoch = marker
            return len(frames) - len(kept)

    def reset(self) -> int:
        """Restart the log as a fresh epoch-0 baseline (drops everything).

        For when the *dataset itself* has been re-saved as the new
        baseline (``repro update --wal --save-data`` without a bundle):
        a CSV carries no epoch, so the next cold session over it starts
        at epoch 0 and must see a log that starts there too -- a
        :meth:`checkpoint` marker at the old epoch would fail it closed
        even though the CSV embodies every logged update.  Returns the
        number of records dropped.
        """
        with self._lock:
            self._drop_handle()
            self._head_epoch = 0
            self._records = 0
            self._checkpoint_epoch = 0
            if not os.path.exists(self.path) or os.path.getsize(self.path) == 0:
                return 0
            frames, _, _, _ = _scan(self.path)
            replace_atomically(self.path, lambda fh: fh.write(_header_bytes()))
            return len(frames)

    def state(self) -> dict:
        """Durability snapshot: record count, epochs, bytes on disk.

        ``records`` is the number of intact records the log holds --
        records since the last checkpoint, i.e. exactly what a restart
        must replay (operators read it as replication lag; a
        :class:`~repro.service.DurabilityPolicy` keys its checkpoint
        and compaction triggers off it and off ``bytes``).  Cheap after
        the first call: counts are maintained in step with every
        append/checkpoint/rollback, so only a never-opened log pays a
        one-off scan.
        """
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
            exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
            if (
                self._records is None
                or self._head_epoch is None
                or self._checkpoint_epoch is None
            ):
                if exists:
                    frames, _, _, header = _scan(self.path)
                    self._records = len(frames)
                    self._head_epoch = (
                        frames[-1][0] + _payload_span(frames[-1][2])
                        if frames
                        else int(header.get("checkpoint_epoch", 0))
                    )
                    self._checkpoint_epoch = int(
                        header.get("checkpoint_epoch", 0)
                    )
                else:
                    self._records, self._head_epoch = 0, 0
                    self._checkpoint_epoch = 0
            return {
                "path": self.path,
                "records": int(self._records),
                "head_epoch": int(self._head_epoch),
                "checkpoint_epoch": int(self._checkpoint_epoch),
                "bytes": os.path.getsize(self.path) if exists else 0,
            }

    def compact(self, schema: Schema) -> CompactStats:
        """Merge every logged record into one equivalent batch.

        Composes the log's delete/append sequence into a single
        :class:`~repro.engine.updates.UpdateBatch` whose application to
        the dataset at the log's base epoch yields the bitwise-identical
        final dataset (deletes preserve row order and appends land at
        the end, so surviving original rows and surviving appended rows
        each keep their relative order -- the merged batch deletes the
        originals that did not survive and appends the appended rows
        that did, in order).

        Epoch numbering is **stable across compaction**: the rewritten
        log holds one record at the base epoch whose payload carries
        the merged *span* (summing the spans of already-compacted
        inputs, so re-compaction keeps covering the full range), and
        the log's head epoch is unchanged -- the live session, every
        replica, and every bundle keep their epoch numbers.  Applying
        the merged record fast-forwards a session from the base epoch
        straight to ``base + span`` (:func:`replay`); a bundle whose
        epoch falls strictly *inside* the span fails closed.  A stream
        that cancels out to a net no-op still compacts to one (empty)
        record, because mid-span bundles hold mid-span data and must
        not silently replay nothing.  Compact is a durability-
        preserving rewrite (atomic fsynced replace): at no point is the
        old log gone without the new one being durable.
        """
        with self._lock:
            self._drop_handle()
            stats = CompactStats()
            if not os.path.exists(self.path) or os.path.getsize(self.path) == 0:
                return stats
            frames, _, _, header = _scan(self.path)
            stats.records_before = len(frames)
            stats.records_after = len(frames)
            stats.bytes_before = os.path.getsize(self.path)
            stats.bytes_after = stats.bytes_before
            marker = int(header.get("checkpoint_epoch", 0))
            if frames:
                stats.base_epoch = frames[0][0]
                stats.head_epoch = frames[-1][0] + _payload_span(frames[-1][2])
            else:
                stats.base_epoch = stats.head_epoch = marker
            if len(frames) <= 1:
                return stats
            base_epoch, base_n = frames[0][0], frames[0][1]
            merged, span = _compose_frames(frames, schema, self.path)
            payload = _encode_record(merged, schema, span=span)

            def write(fh: IO[bytes]) -> None:
                fh.write(_header_bytes(marker))
                fh.write(
                    _FRAME.pack(
                        len(payload),
                        _frame_crc(base_epoch, base_n, payload),
                        base_epoch,
                        base_n,
                    )
                    + payload
                )

            replace_atomically(self.path, write)
            self._records = 1
            self._head_epoch = base_epoch + span
            self._checkpoint_epoch = marker
            self._adopt_head = False
            stats.records_after = 1
            stats.merged = stats.records_before - 1
            stats.head_epoch = int(self._head_epoch)
            stats.bytes_after = os.path.getsize(self.path)
            return stats

    def __repr__(self) -> str:
        size = os.path.getsize(self.path) if os.path.exists(self.path) else 0
        return f"WriteAheadLog({self.path!r}, bytes={size})"


def replay(
    session: "QuerySession",
    wal: "WriteAheadLog | str | os.PathLike[str]",
    *,
    repair: bool = True,
) -> ReplayStats:
    """Fast-forward a restored session from its saved epoch to the log head.

    ``session`` is typically fresh from
    :func:`~repro.engine.persist.load_session`; ``wal`` is a
    :class:`WriteAheadLog` or a path.  Records the bundle already covers
    (pre-update epoch below the session's) are skipped; the rest are
    **composed into one equivalent batch** (the same row-provenance
    merge :meth:`WriteAheadLog.compact` uses) and re-applied through
    the normal update path in a single index patch, so the recovered
    session is bitwise-identical to a cold session on the final dataset
    while paying one patch pass regardless of log length -- and, for a
    format-v3 bundle, no cold channel-table rebuild happens along the
    way (pending per-compiler cell sums are patched in place).

    A torn tail (crash mid-append) is truncated off the file when
    ``repair`` is True (the default) and never raises.  A *gap* -- the
    log's oldest surviving record is newer than the bundle, i.e. the log
    was checkpointed past it -- raises ``ValueError``, as does a
    row-count mismatch (bundle and log from different lineages).

    Replay never writes to the log, even when ``session`` has this WAL
    attached, so attach-then-replay is the natural recovery sequence.
    """
    from .updates import apply_update

    if isinstance(wal, WriteAheadLog):
        wal.sync()
        path = wal.path
    else:
        path = os.fspath(wal)
    stats = ReplayStats(final_epoch=session.epoch)
    if not os.path.exists(path) or os.path.getsize(path) == 0:
        return stats
    frames, good_end, torn, header = _scan(path)
    checkpoint_epoch = int(header.get("checkpoint_epoch", 0))
    if checkpoint_epoch > session.epoch:
        # Even with no surviving records the marker fails closed: an
        # old bundle plus a checkpointed (possibly empty) log would
        # otherwise silently replay nothing and serve stale state.
        raise ValueError(
            f"write-ahead log {path!s} was checkpointed at epoch "
            f"{checkpoint_epoch} but the session is at epoch "
            f"{session.epoch}: records this bundle needs were truncated.  "
            "Restore from the bundle (and dataset) saved at that "
            "checkpoint, or rebuild with `repro index-build`"
        )
    if torn:
        stats.truncated_bytes = os.path.getsize(path) - good_end
        if repair:
            with open(path, "r+b") as fh:
                fh.truncate(good_end)
    schema = session.dataset.schema

    def check_span(epoch: int, payload: bytes) -> None:
        # A compacted record spanning [epoch, epoch+span) can neither be
        # skipped nor applied when the bundle's epoch falls strictly
        # inside the span.  Only the LAST skipped frame can straddle:
        # record epochs are contiguous across spans, so an earlier
        # skipped frame followed by another skipped frame ends before
        # that one starts -- decoding one payload per replay keeps the
        # skip path O(1) per record for replica polls.
        span = _payload_span(payload)
        if epoch + span > session.epoch:
            raise ValueError(
                f"write-ahead log {path!s} holds a compacted record "
                f"spanning epochs {epoch}-{epoch + span - 1} but the "
                f"session is at epoch {session.epoch}, *inside* the "
                "span: the merged record can neither be skipped nor "
                "applied for this bundle.  Restore from the bundle "
                "saved at the compaction base (or rebuild with "
                "`repro index-build`)"
            )

    last_skipped: "tuple[int, bytes] | None" = None
    pending: "list[Tuple[int, int, bytes]]" = []
    for epoch, pre_n, payload in frames:
        if epoch < session.epoch:
            last_skipped = (epoch, payload)
            stats.skipped += 1
            continue
        if last_skipped is not None:
            check_span(*last_skipped)
            last_skipped = None
        if not pending:
            if epoch > session.epoch:
                raise ValueError(
                    f"write-ahead log {path!s} starts at epoch {epoch} but "
                    f"the session is at epoch {session.epoch}: the log was "
                    "checkpointed past this bundle.  Restore from the bundle "
                    "saved at that checkpoint (or rebuild with "
                    "`repro index-build`)"
                )
            if pre_n != session.dataset.n:
                raise ValueError(
                    f"write-ahead log {path!s} record at epoch {epoch} "
                    f"expects {pre_n} rows but the session dataset has "
                    f"{session.dataset.n}: bundle and log are from different "
                    "dataset lineages.  If the dataset file was re-saved "
                    "after these records were applied (e.g. a crash between "
                    "--save-data and the WAL checkpoint), the records are "
                    "already reflected in it and the log can safely be "
                    "deleted"
                )
        pending.append((epoch, pre_n, payload))
    if last_skipped is not None:
        check_span(*last_skipped)

    if pending:
        # Coalesce the whole pending tail into ONE equivalent batch and
        # apply it through a single index patch: replay cost is one
        # update regardless of log length, which is what lets recovery
        # beat a cold rebuild (`speedup_wal_replay`).  Contiguity and
        # row-count consistency of the later records are enforced by
        # the composition itself; the first record was validated against
        # the session above.  ``applied`` still counts source records.
        base_epoch = pending[0][0]
        if len(pending) == 1:
            merged = _decode_record(pending[0][2], schema)
            span = _payload_span(pending[0][2])
        else:
            merged, span = _compose_frames(pending, schema, path)
        ustats = apply_update(session, merged, log=False)
        stats.applied = len(pending)
        stats.appended += ustats.appended
        stats.deleted += ustats.deleted
        stats.pending_tables_patched += ustats.pending_tables_patched
        stats.lattices_patched += (
            ustats.lattices_patched + ustats.pending_lattices_patched
        )
        if session.epoch != base_epoch + span:
            # The merged batch stands for `span` original updates (the
            # apply bumped the epoch once, or -- for a net-no-op merge
            # -- not at all): fast-forward past the covered range.
            # Under the exclusive gate: a replica may be serving while
            # it replays, and an in-flight solve_with_epoch must never
            # observe the post-merge dataset with the pre-merge label.
            with session._exclusive_gate():
                session.epoch = base_epoch + span
    stats.final_epoch = session.epoch
    return stats


# Runtime sanitizer (DESIGN.md §14): enforce the guarded-by
# declarations above when REPRO_SANITIZE=1.
sanitize_class(WriteAheadLog)
