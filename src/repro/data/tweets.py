"""Tweet-like dataset (substitute for the paper's 3.2e8-tweet corpus).

The paper's Tweet data covers the continental US (lat [24.39, 49.39],
lon [-124.87, -66.86]) with GPS accuracy 1e-8.  We generate clustered
synthetic tweets over the same bounding box with:

* ``day_of_week`` -- categorical Mon..Sun; a configurable fraction of
  clusters are *weekend hot-spots* (mostly Sat/Sun tweets), giving the
  paper's composite aggregator F1 a well-defined optimum;
* ``length`` -- tweet text length in [1, 280], used by the POISyn
  derivation exactly as the paper derives ratings from tweet lengths.

Coordinates are snapped to a 1e-5-degree lattice (a coarser but
behaviour-preserving stand-in for the paper's 1e-8; see DESIGN.md §3).
"""

from __future__ import annotations

import numpy as np

from ..core.aggregators import CompositeAggregator, DistributionAggregator
from ..core.attributes import CategoricalAttribute, NumericAttribute, Schema
from ..core.geometry import Rect
from ..core.objects import SpatialDataset
from ..core.query import ASRSQuery
from ..core.selection import SelectAll
from .synthetic import clustered_points

US_BOUNDS = Rect(-124.87, 24.39, -66.86, 49.39)

DAYS = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")

TWEET_SCHEMA = Schema.of(
    CategoricalAttribute("day_of_week", DAYS),
    NumericAttribute("length", lo=1.0, hi=140.0),
)


def generate_tweet_dataset(
    n: int,
    seed: int = 0,
    n_clusters: int = 25,
    weekend_hotspot_fraction: float = 0.2,
    bounds: Rect = US_BOUNDS,
    resolution: float = 1e-5,
) -> SpatialDataset:
    """Generate ``n`` synthetic geo-tagged tweets.

    A ``weekend_hotspot_fraction`` of the clusters posts ~90% of its
    tweets on Saturday/Sunday; the rest follow a mild weekday-leaning
    profile, mirroring the skew the paper's F1 experiments exploit.
    """
    rng = np.random.default_rng(seed)
    xs, ys, cluster_ids = clustered_points(
        rng, n, bounds, n_clusters=n_clusters, resolution=resolution
    )
    n_hot = max(1, int(round(weekend_hotspot_fraction * n_clusters)))
    hot_clusters = set(range(n_hot))  # the most popular clusters are hot

    weekday_profile = np.array([0.17, 0.17, 0.17, 0.17, 0.16, 0.08, 0.08])
    weekend_profile = np.array([0.02, 0.02, 0.02, 0.02, 0.02, 0.45, 0.45])
    days = np.empty(n, dtype=np.int64)
    for is_hot, profile in ((True, weekend_profile), (False, weekday_profile)):
        mask = np.isin(cluster_ids, list(hot_clusters)) == is_hot
        days[mask] = rng.choice(7, size=int(mask.sum()), p=profile)

    # 2014-2016 tweets were capped at 140 characters and skewed toward
    # the cap; Beta(5, 2) reproduces that high-mass-near-max profile
    # (which also keeps POISyn ratings concentrated high, as the paper's
    # length-derived ratings were).
    lengths = np.clip(np.round(140.0 * rng.beta(5.0, 2.0, size=n)), 1.0, 140.0)
    return SpatialDataset(
        xs, ys, TWEET_SCHEMA, {"day_of_week": days, "length": lengths}
    )


def weekend_aggregator() -> CompositeAggregator:
    """Composite Aggregator 1 (Section 7.1): day-of-week distribution."""
    return CompositeAggregator([DistributionAggregator("day_of_week", SelectAll())])


def regional_max_estimate(
    dataset: SpatialDataset,
    mask: np.ndarray,
    width: float,
    height: float,
    weights: np.ndarray | None = None,
    margin: float = 2.0,
) -> float:
    """Estimate ``T``: the maximum mass a ``width x height`` region can hold.

    Takes the max over four half-cell-shifted histograms of the selected
    objects and inflates it by ``margin``.  The paper defines its F1/F2
    targets as the *maximum a region can have*; an aspirational
    (over-)estimate preserves that semantics and keeps the resulting
    optimum basin sharp -- a target that undershoots what regions
    achieve creates a plateau of exact ties that any exact algorithm
    must enumerate.
    """
    xs, ys = dataset.xs[mask], dataset.ys[mask]
    if xs.size == 0:
        return 0.0
    if weights is None:
        weights = np.ones(xs.size)
    else:
        weights = np.asarray(weights, dtype=np.float64)[mask]
    bounds = dataset.bounds()
    best = 0.0
    for shift_x in (0.0, width / 2.0):
        for shift_y in (0.0, height / 2.0):
            nx = max(1, int(np.ceil((bounds.width + width) / width)))
            ny = max(1, int(np.ceil((bounds.height + height) / height)))
            cols = np.clip(
                ((xs - bounds.x_min + shift_x) / width).astype(int), 0, nx - 1
            )
            rows = np.clip(
                ((ys - bounds.y_min + shift_y) / height).astype(int), 0, ny - 1
            )
            hist = np.bincount(cols * ny + rows, weights=weights, minlength=nx * ny)
            best = max(best, float(hist.max()))
    return best * margin


def weekend_query(
    dataset: SpatialDataset,
    width: float,
    height: float,
    margin: float = 2.0,
) -> ASRSQuery:
    """The paper's F1 query: find the most weekend-heavy region.

    The target representation is ``(0, 0, 0, 0, 0, T6, T7)`` with T6/T7
    the maximum Saturday/Sunday tweet counts a region of the query size
    can hold (estimated aspirationally; see
    :func:`regional_max_estimate`), and weights ``(1/5, ..., 1/2, 1/2)``.
    """
    agg = weekend_aggregator()
    codes = dataset.column("day_of_week")
    targets = [
        regional_max_estimate(dataset, codes == day, width, height, margin=margin)
        for day in (5, 6)
    ]
    target_rep = np.array([0.0] * 5 + targets)
    weights = np.array([1 / 5] * 5 + [1 / 2] * 2)
    return ASRSQuery.from_vector(width, height, agg, target_rep, weights=weights)
