"""POISyn: the paper's synthetic POI dataset (Section 7.1).

Derived from the Tweet data exactly as the paper describes: every tweet
becomes a POI at the same location with

* ``rating = |tweet| / max|tweet| * 10``  (float in [0, 10]);
* ``visits`` drawn uniformly from [1, 500].
"""

from __future__ import annotations

import numpy as np

from ..core.aggregators import (
    AverageAggregator,
    CompositeAggregator,
    SumAggregator,
)
from ..core.attributes import NumericAttribute, Schema
from ..core.geometry import Rect
from ..core.objects import SpatialDataset
from ..core.query import ASRSQuery
from ..core.selection import SelectAll
from .tweets import US_BOUNDS, generate_tweet_dataset

POISYN_SCHEMA = Schema.of(
    NumericAttribute("rating", lo=0.0, hi=10.0),
    NumericAttribute("visits", lo=1.0, hi=500.0),
)


def poisyn_from_tweets(tweets: SpatialDataset, seed: int = 0) -> SpatialDataset:
    """Apply the paper's POISyn recipe to a tweet dataset."""
    rng = np.random.default_rng(seed)
    lengths = tweets.column("length")
    max_len = float(lengths.max()) if tweets.n else 1.0
    ratings = lengths / max_len * 10.0
    visits = rng.integers(1, 501, size=tweets.n).astype(np.float64)
    return SpatialDataset(
        tweets.xs, tweets.ys, POISYN_SCHEMA, {"rating": ratings, "visits": visits}
    )


def generate_poisyn_dataset(
    n: int,
    seed: int = 0,
    n_clusters: int = 25,
    bounds: Rect = US_BOUNDS,
) -> SpatialDataset:
    """Generate POISyn directly (tweets + recipe in one call)."""
    tweets = generate_tweet_dataset(
        n, seed=seed, n_clusters=n_clusters, bounds=bounds
    )
    return poisyn_from_tweets(tweets, seed=seed + 1)


def poisyn_aggregator() -> CompositeAggregator:
    """Composite Aggregator 2: total visits and average rating."""
    return CompositeAggregator(
        [
            SumAggregator("visits", SelectAll()),
            AverageAggregator("rating", SelectAll()),
        ]
    )


def poisyn_query(
    dataset: SpatialDataset,
    width: float,
    height: float,
    margin: float = 1.25,
) -> ASRSQuery:
    """The paper's F2 query: many visits, excellent average rating.

    Target ``(v_max, 10)`` with weights ``(1/v_max, 1/10)``; ``v_max``
    (the maximum total visits a region of this size can hold) is
    estimated aspirationally, as in
    :func:`repro.data.tweets.regional_max_estimate`.
    """
    from .tweets import regional_max_estimate

    agg = poisyn_aggregator()
    v_max = regional_max_estimate(
        dataset,
        np.ones(dataset.n, dtype=bool),
        width,
        height,
        weights=dataset.column("visits"),
        margin=margin,
    )
    v_max = max(v_max, 1.0)
    target = np.array([v_max, 10.0])
    weights = np.array([1.0 / v_max, 1.0 / 10.0])
    return ASRSQuery.from_vector(width, height, agg, target, weights=weights)
