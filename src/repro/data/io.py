"""CSV persistence for spatial datasets.

A plain-text interchange format: header ``x,y,<attr>,...``; categorical
values are written as their (string) domain values, numeric as floats.
The schema travels separately (it declares domains and types), matching
how the benchmark harness regenerates datasets deterministically.
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..core.atomicio import replace_atomically
from ..core.attributes import CategoricalAttribute, Schema
from ..core.objects import SpatialDataset


def save_csv(dataset: SpatialDataset, path: str | Path) -> None:
    """Write a dataset to ``path`` as CSV (atomic, fsynced tmp + rename).

    The CSV often travels as the checkpoint partner of a session bundle
    and may gate a WAL checkpoint (``repro update --save-data``) -- a
    crash mid-write must not destroy the previous good copy a restart's
    replay depends on, so it goes through the same
    :func:`~repro.core.atomicio.replace_atomically` sequence as
    :func:`~repro.engine.persist.save_session`.
    """
    names = dataset.schema.names

    def write(fh) -> None:
        writer = csv.writer(fh)
        writer.writerow(["x", "y", *names])
        for obj in dataset:
            writer.writerow([obj.x, obj.y, *(obj.attributes[n] for n in names)])

    replace_atomically(path, write, text=True, newline="")


def load_csv_infer(
    path: str | Path,
    categorical: list[str] | tuple[str, ...] = (),
    numeric: list[str] | tuple[str, ...] = (),
) -> SpatialDataset:
    """Load a CSV, inferring categorical domains from the data.

    Column typing is declared by name (``categorical`` / ``numeric``);
    categorical domains are the sorted distinct values found.  Used by
    the command-line interface, where no Schema object exists yet.
    """
    from ..core.attributes import NumericAttribute

    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        rows = list(reader)
    if header[:2] != ["x", "y"]:
        raise ValueError("CSV must start with columns x,y")
    names = header[2:]
    declared = set(categorical) | set(numeric)
    unknown = declared - set(names)
    if unknown:
        raise ValueError(f"declared columns not in CSV: {sorted(unknown)}")
    undeclared = set(names) - declared
    if undeclared:
        raise ValueError(
            f"columns {sorted(undeclared)} need a --categorical/--numeric type"
        )
    columns = {name: [row[2 + i] for row in rows] for i, name in enumerate(names)}
    attributes = []
    raw = {}
    for name in names:
        if name in categorical:
            domain = tuple(sorted(set(columns[name])))
            attributes.append(CategoricalAttribute(name, domain))
            raw[name] = columns[name]
        else:
            attributes.append(NumericAttribute(name))
            raw[name] = [float(v) for v in columns[name]]
    schema = Schema(tuple(attributes))
    xs = [float(row[0]) for row in rows]
    ys = [float(row[1]) for row in rows]
    return SpatialDataset.from_columns(xs, ys, schema, raw)


def load_csv(path: str | Path, schema: Schema) -> SpatialDataset:
    """Read a dataset written by :func:`save_csv` back under ``schema``."""
    path = Path(path)
    xs: list[float] = []
    ys: list[float] = []
    raw: dict[str, list] = {name: [] for name in schema.names}
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        expected = ["x", "y", *schema.names]
        if header != expected:
            raise ValueError(f"CSV header {header} does not match {expected}")
        for row in reader:
            xs.append(float(row[0]))
            ys.append(float(row[1]))
            for name, value in zip(schema.names, row[2:]):
                attr = schema[name]
                if isinstance(attr, CategoricalAttribute):
                    # Domain values may be non-strings (e.g. ints); map
                    # through their string form for the round-trip.
                    by_str = {str(v): v for v in attr.domain}
                    raw[name].append(by_str[value])
                else:
                    raw[name].append(float(value))
    return SpatialDataset.from_columns(xs, ys, schema, raw)
