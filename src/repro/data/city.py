"""Singapore-like POI dataset for the case study (Section 7.6).

The paper runs DS-Search on 4,556 Foursquare POIs in Singapore, queries
with the "Orchard" shopping district, finds "Marina Bay", and uses
"Bugis" as an interpretive control.  We synthesize a city with three
named districts whose category mixes reproduce the qualitative setup:
Orchard and Marina Bay share a shopping/entertainment profile; Bugis
matches on food/transport but lacks nightlife and arts.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..core.aggregators import CompositeAggregator, DistributionAggregator
from ..core.attributes import CategoricalAttribute, Schema
from ..core.geometry import Rect
from ..core.objects import SpatialDataset
from ..core.selection import SelectAll
from .synthetic import snap

SINGAPORE_BOUNDS = Rect(103.60, 1.24, 104.00, 1.46)

CATEGORIES = (
    "Food",
    "Shop & Service",
    "Nightlife Spot",
    "Arts & Entertainment",
    "Travel & Transport",
    "Residence",
    "Outdoors & Recreation",
)

CITY_SCHEMA = Schema.of(CategoricalAttribute("category", CATEGORIES))

# Category mixes (probabilities over CATEGORIES).
_PROFILE_SHOPPING = np.array([0.28, 0.34, 0.10, 0.12, 0.08, 0.04, 0.04])
_PROFILE_BUGIS = np.array([0.34, 0.18, 0.02, 0.02, 0.12, 0.24, 0.08])
_PROFILE_BACKGROUND = np.array([0.25, 0.12, 0.03, 0.03, 0.12, 0.33, 0.12])

# District centers (lon, lat), loosely inspired by the real city layout.
_DISTRICTS = {
    "Orchard": (103.832, 1.304),
    "Marina Bay": (103.860, 1.283),
    "Bugis": (103.855, 1.300),
}
_DISTRICT_PROFILES = {
    "Orchard": _PROFILE_SHOPPING,
    "Marina Bay": _PROFILE_SHOPPING,
    "Bugis": _PROFILE_BUGIS,
}
#: Query/candidate region size used by the case study (degrees).
DISTRICT_SIZE = (0.012, 0.012)


def generate_city_dataset(
    n: int = 4556,
    seed: int = 0,
    resolution: float = 1e-5,
) -> Tuple[SpatialDataset, Dict[str, Rect]]:
    """Generate the case-study city.

    Returns ``(dataset, districts)`` where ``districts`` maps the three
    named districts to rectangles of :data:`DISTRICT_SIZE` centred on
    them.
    """
    rng = np.random.default_rng(seed)
    district_share = 0.18  # of POIs per named district
    w, h = DISTRICT_SIZE

    xs_parts, ys_parts, cat_parts = [], [], []
    districts: Dict[str, Rect] = {}
    for name, (cx, cy) in _DISTRICTS.items():
        m = int(n * district_share)
        xs_parts.append(rng.normal(cx, w / 4.5, m))
        ys_parts.append(rng.normal(cy, h / 4.5, m))
        cat_parts.append(rng.choice(7, size=m, p=_DISTRICT_PROFILES[name]))
        districts[name] = Rect.from_center(cx, cy, w, h)

    m_bg = n - sum(p.size for p in xs_parts)
    xs_parts.append(rng.uniform(SINGAPORE_BOUNDS.x_min, SINGAPORE_BOUNDS.x_max, m_bg))
    ys_parts.append(rng.uniform(SINGAPORE_BOUNDS.y_min, SINGAPORE_BOUNDS.y_max, m_bg))
    cat_parts.append(rng.choice(7, size=m_bg, p=_PROFILE_BACKGROUND))

    xs = snap(np.concatenate(xs_parts), resolution)
    ys = snap(np.concatenate(ys_parts), resolution)
    cats = np.concatenate(cat_parts)
    order = rng.permutation(xs.size)
    dataset = SpatialDataset(
        xs[order], ys[order], CITY_SCHEMA, {"category": cats[order]}
    )
    return dataset, districts


def category_aggregator() -> CompositeAggregator:
    """The case study's aggregator: POI category distribution."""
    return CompositeAggregator([DistributionAggregator("category", SelectAll())])
