"""Dataset generators and IO (paper Section 7.1 substitutes)."""

from .city import (
    CATEGORIES,
    CITY_SCHEMA,
    DISTRICT_SIZE,
    SINGAPORE_BOUNDS,
    category_aggregator,
    generate_city_dataset,
)
from .io import load_csv, save_csv
from .poisyn import (
    POISYN_SCHEMA,
    generate_poisyn_dataset,
    poisyn_aggregator,
    poisyn_from_tweets,
    poisyn_query,
)
from .synthetic import clustered_points, snap, uniform_points
from .tweets import (
    DAYS,
    TWEET_SCHEMA,
    US_BOUNDS,
    generate_tweet_dataset,
    weekend_aggregator,
    weekend_query,
)

__all__ = [
    "CATEGORIES",
    "CITY_SCHEMA",
    "DAYS",
    "DISTRICT_SIZE",
    "POISYN_SCHEMA",
    "SINGAPORE_BOUNDS",
    "TWEET_SCHEMA",
    "US_BOUNDS",
    "category_aggregator",
    "clustered_points",
    "generate_city_dataset",
    "generate_poisyn_dataset",
    "generate_tweet_dataset",
    "load_csv",
    "poisyn_aggregator",
    "poisyn_from_tweets",
    "poisyn_query",
    "save_csv",
    "snap",
    "uniform_points",
    "weekend_aggregator",
    "weekend_query",
]
