"""Synthetic point generators shared by the dataset builders.

All generators snap coordinates to a lattice by default, mirroring how
GPS hardware quantizes fixes.  Snapping bounds the paper's ΔX/ΔY
accuracies below (Definition 7), which both the drop condition and the
O(Ω·n) complexity analysis rely on.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.geometry import Rect


def snap(values: np.ndarray, resolution: float) -> np.ndarray:
    """Round values to multiples of ``resolution`` (no-op when 0/None)."""
    if not resolution:
        return values
    return np.round(values / resolution) * resolution


def uniform_points(
    rng: np.random.Generator,
    n: int,
    bounds: Rect,
    resolution: float = 1e-5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniformly distributed points in ``bounds``."""
    xs = snap(rng.uniform(bounds.x_min, bounds.x_max, n), resolution)
    ys = snap(rng.uniform(bounds.y_min, bounds.y_max, n), resolution)
    return xs, ys


def clustered_points(
    rng: np.random.Generator,
    n: int,
    bounds: Rect,
    n_clusters: int = 25,
    spread_fraction: float = 0.02,
    uniform_fraction: float = 0.2,
    core_fraction: float = 0.3,
    core_shrink: float = 6.0,
    resolution: float = 1e-5,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gaussian-cluster points resembling geo-tagged social data.

    Returns ``(xs, ys, cluster_ids)`` with ``cluster_id = -1`` for the
    uniformly-scattered background fraction.  Cluster sizes follow a
    harmonic (Zipf-like) profile: a few dense metros, many small towns.
    Each cluster concentrates ``core_fraction`` of its mass in a
    ``core_shrink``-times-tighter downtown core, mimicking the extreme
    urban-core density of real geo-tagged data (without it, synthetic
    density is too flat and region-search optima lose their sharpness).
    """
    if n_clusters < 1:
        raise ValueError("need at least one cluster")
    centers_x = rng.uniform(bounds.x_min, bounds.x_max, n_clusters)
    centers_y = rng.uniform(bounds.y_min, bounds.y_max, n_clusters)
    sigma_x = bounds.width * spread_fraction
    sigma_y = bounds.height * spread_fraction

    n_background = int(n * uniform_fraction)
    n_clustered = n - n_background
    popularity = 1.0 / np.arange(1, n_clusters + 1)
    popularity /= popularity.sum()
    ids = rng.choice(n_clusters, size=n_clustered, p=popularity)

    in_core = rng.random(n_clustered) < core_fraction
    sx = np.where(in_core, sigma_x / core_shrink, sigma_x)
    sy = np.where(in_core, sigma_y / core_shrink, sigma_y)
    xs = centers_x[ids] + rng.normal(0.0, 1.0, n_clustered) * sx
    ys = centers_y[ids] + rng.normal(0.0, 1.0, n_clustered) * sy
    bg_x, bg_y = uniform_points(rng, n_background, bounds, resolution=0.0)

    xs = np.concatenate([xs, bg_x])
    ys = np.concatenate([ys, bg_y])
    ids = np.concatenate([ids, np.full(n_background, -1)])
    xs = snap(np.clip(xs, bounds.x_min, bounds.x_max), resolution)
    ys = snap(np.clip(ys, bounds.y_min, bounds.y_max), resolution)

    order = rng.permutation(n)
    return xs[order], ys[order], ids[order]
