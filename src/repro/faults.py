"""Failpoint fault injection (DESIGN.md §12).

A process-wide registry of *failpoints*: named checkpoints compiled
into the durability-critical write paths (``atomicio``, the WAL,
persistence, the serving facade, the HTTP frontend).  Disabled -- the
default -- a checkpoint is one module-global read
(``if not _armed: return``); the chaos harness and operators arm them
to inject deterministic faults at exactly the boundary under test:

=================  ====================================================
action             effect at the checkpoint
=================  ====================================================
``raise``          raise :class:`FailpointError` (named after the site)
``crash``          ``os._exit(CRASH_EXIT_CODE)`` -- no cleanup, no
                   atexit, the closest stdlib gets to ``kill -9`` from
                   inside
``sleep:<s>``      ``time.sleep(s)`` -- stall to widen race windows
``torn-write:<b>`` write the first ``b`` bytes of the pending buffer
                   to the site's file handle, flush+fsync, then crash
                   -- a torn frame on real storage
=================  ====================================================

Modifiers: ``@once`` fires on the first hit only; ``@every-N`` fires
on every Nth hit (1-indexed).  Specs combine as
``name=action[:arg][@modifier]``, comma-separated in the
``REPRO_FAILPOINTS`` environment variable::

    REPRO_FAILPOINTS='wal.append.frame-write=torn-write:7@once' \
        repro serve ...

Every site calls :func:`register` at import time, so
:func:`registered` enumerates the full surface -- the chaos matrix
asserts it covers each one (a new failpoint without a chaos case
fails the suite).  Malformed specs raise immediately rather than
silently disabling a fault the operator believed was armed.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import BinaryIO, Dict, FrozenSet, Mapping, Optional, Set

__all__ = [
    "CRASH_EXIT_CODE",
    "ENV_VAR",
    "FailpointError",
    "active",
    "disable",
    "enable",
    "failpoint",
    "load_env",
    "parse_specs",
    "register",
    "registered",
    "reset",
]

ENV_VAR = "REPRO_FAILPOINTS"

#: Exit status used by ``crash`` / ``torn-write`` so harnesses can tell
#: an injected crash apart from an ordinary failure.
CRASH_EXIT_CODE = 86

_ACTIONS = frozenset({"raise", "crash", "sleep", "torn-write"})


class FailpointError(RuntimeError):
    """The loud, named error a ``raise``-action failpoint injects."""

    def __init__(self, name: str) -> None:
        super().__init__(f"injected fault: failpoint {name!r}")
        self.name = name


@dataclass
class _Spec:
    """One armed failpoint: action plus firing schedule."""

    action: str
    arg: Optional[float] = None
    once: bool = False
    every: Optional[int] = None
    hits: int = 0
    fired: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def should_fire(self) -> bool:
        with self.lock:
            self.hits += 1
            if self.once and self.fired:
                return False
            if self.every is not None and self.hits % self.every != 0:
                return False
            self.fired += 1
            return True


_lock = threading.Lock()
_names: Set[str] = set()
_specs: Dict[str, _Spec] = {}
#: The fast-path flag -- ``failpoint()`` returns after one read of this
#: when nothing is armed.  Only mutated under ``_lock``.
_armed = False


def register(name: str) -> str:
    """Declare a failpoint site; returns ``name`` for constant-binding."""
    if not name or "=" in name or "," in name:
        raise ValueError(f"bad failpoint name {name!r}")
    with _lock:
        _names.add(name)
    return name


def registered() -> FrozenSet[str]:
    """Every failpoint site declared anywhere in the process."""
    with _lock:
        return frozenset(_names)


def _parse_one(name: str, text: str) -> _Spec:
    spec, _, modifier = text.partition("@")
    action, _, raw_arg = spec.partition(":")
    if action not in _ACTIONS:
        raise ValueError(
            f"failpoint {name!r}: unknown action {action!r} "
            f"(expected one of {sorted(_ACTIONS)})"
        )
    arg: Optional[float] = None
    if action == "sleep":
        if not raw_arg:
            raise ValueError(f"failpoint {name!r}: sleep needs ':<seconds>'")
        arg = float(raw_arg)
        if arg < 0:
            raise ValueError(f"failpoint {name!r}: negative sleep")
    elif action == "torn-write":
        if not raw_arg:
            raise ValueError(f"failpoint {name!r}: torn-write needs ':<bytes>'")
        arg = float(int(raw_arg))
        if arg < 0:
            raise ValueError(f"failpoint {name!r}: negative torn-write length")
    elif raw_arg:
        raise ValueError(f"failpoint {name!r}: {action} takes no argument")
    once = False
    every: Optional[int] = None
    if modifier:
        if modifier == "once":
            once = True
        elif modifier.startswith("every-"):
            every = int(modifier[len("every-"):])
            if every < 1:
                raise ValueError(f"failpoint {name!r}: every-N needs N >= 1")
        else:
            raise ValueError(
                f"failpoint {name!r}: unknown modifier {modifier!r} "
                "(expected 'once' or 'every-N')"
            )
    return _Spec(action=action, arg=arg, once=once, every=every)


def parse_specs(text: str) -> Dict[str, _Spec]:
    """Parse a ``REPRO_FAILPOINTS`` value into ``{name: spec}``.

    Raises :class:`ValueError` on any malformed entry -- an operator
    arming a fault must never find it silently ignored.
    """
    specs: Dict[str, _Spec] = {}
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, sep, spec_text = entry.partition("=")
        name = name.strip()
        if not sep or not name or not spec_text.strip():
            raise ValueError(f"bad failpoint entry {entry!r} (want name=action)")
        specs[name] = _parse_one(name, spec_text.strip())
    return specs


def enable(name: str, spec_text: str) -> None:
    """Arm ``name`` with an action spec like ``'raise'`` or ``'sleep:0.1@once'``."""
    spec = _parse_one(name, spec_text)
    global _armed
    with _lock:
        _names.add(name)
        _specs[name] = spec
        _armed = True


def disable(name: str) -> None:
    """Disarm ``name`` (a no-op if it was not armed)."""
    global _armed
    with _lock:
        _specs.pop(name, None)
        _armed = bool(_specs)


def reset() -> None:
    """Disarm every failpoint (sites stay registered)."""
    global _armed
    with _lock:
        _specs.clear()
        _armed = False


def active() -> Dict[str, str]:
    """``{name: action}`` for every armed failpoint."""
    with _lock:
        return {name: spec.action for name, spec in _specs.items()}


def load_env(environ: Optional[Mapping[str, str]] = None) -> Dict[str, str]:
    """Arm every failpoint named in ``REPRO_FAILPOINTS``; returns them."""
    source: Mapping[str, str] = environ if environ is not None else os.environ
    text = source.get(ENV_VAR, "")
    if not text:
        return {}
    global _armed
    specs = parse_specs(text)
    with _lock:
        for name, spec in specs.items():
            _names.add(name)
            _specs[name] = spec
        _armed = bool(_specs)
    return {name: spec.action for name, spec in specs.items()}


def failpoint(
    name: str, *, fh: Optional[BinaryIO] = None, data: Optional[bytes] = None
) -> None:
    """The checkpoint.  Near-free when nothing is armed.

    ``fh``/``data`` give ``torn-write`` a file handle and the bytes the
    caller was about to write; sites on write paths pass them so a torn
    frame lands on real storage before the crash.
    """
    if not _armed:
        return
    with _lock:
        spec = _specs.get(name)
    if spec is None or not spec.should_fire():
        return
    if spec.action == "sleep":
        time.sleep(spec.arg or 0.0)
        return
    if spec.action == "raise":
        raise FailpointError(name)
    if spec.action == "torn-write":
        if fh is not None and data is not None:
            torn = data[: int(spec.arg or 0)]
            if torn:
                fh.write(torn)
            try:
                fh.flush()
                os.fsync(fh.fileno())
            except (OSError, ValueError):
                pass  # best effort -- we are about to crash anyway
        os._exit(CRASH_EXIT_CODE)
    # "crash": simulate power loss / kill -9 from inside the process.
    os._exit(CRASH_EXIT_CODE)


load_env()
