"""Run every experiment in sequence (use --quick for a fast smoke pass)."""

from __future__ import annotations

import argparse

from . import fig10, fig11, fig12, fig13, fig14, fig8, fig9, table1, table2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced scales")
    args = parser.parse_args()
    quick = args.quick

    fig8.run(quick=quick).show()
    fig9.run(quick=quick).show()
    fig10.run(quick=quick).show()
    fig11.run(quick=quick).show()
    table1.run(quick=quick).show()
    fig12.run(quick=quick).show()
    table2.run(quick=quick).show()
    fig13.run_sizes(quick=quick).show()
    fig13.run_scalability(quick=quick).show()
    fig14.run(quick=quick).show()


if __name__ == "__main__":
    main()
