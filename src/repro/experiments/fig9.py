"""Figure 9: DS-Search runtime vs. grid parameters ncol = nrow.

Paper setup: ncol = nrow in {10, 20, 30, 40, 50}, sizes q..10q.  The
shape to reproduce: runtime depends on the granularity with an interior
optimum -- too-coarse grids fail the drop condition for longer, and
too-fine grids pay for cells.  (The adaptive-grid heuristic is disabled
so the parameter takes full effect.)
"""

from __future__ import annotations

from ..data import weekend_query
from ..dssearch import SearchSettings, ds_search
from .datasets import paper_query_size, tweets
from .harness import Table, environment_banner, timed

GRIDS = (10, 20, 30, 40, 50)
SIZES = (1, 4, 7, 10)


def run(n: int = 20_000, quick: bool = False) -> Table:
    if quick:
        n = min(n, 3_000)
    dataset = tweets(n)
    table = Table(
        f"Fig 9 - DS-Search runtime (ms) vs. ncol=nrow (Tweet-{n//1000}k)",
        ["size"] + [f"{g}x{g}" for g in GRIDS],
    )
    for k in SIZES:
        width, height = paper_query_size(dataset, k)
        query = weekend_query(dataset, width, height)
        row = [f"{k}q"]
        for g in GRIDS:
            settings = SearchSettings(ncol=g, nrow=g, adaptive_grid=False)
            _, seconds = timed(ds_search, dataset, query, settings)
            row.append(seconds * 1e3)
        table.add_row(*row)
    table.add_note(environment_banner())
    return table


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
