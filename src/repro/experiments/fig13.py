"""Figure 13: application to the MaxRS problem.

Paper setup: (a) runtime vs. rectangle size (q..30q) on 5 x 10^6
objects; (b) scalability 1-10 x 10^6 at size 10q; DS-Search adaptation
vs. the O(n log n) Optimal Enclosure (OE) algorithm.  The shape to
reproduce: DS-MaxRS is faster than OE and less sensitive to the
rectangle size.
"""

from __future__ import annotations

from ..baselines.maxrs_oe import max_rs_oe
from ..dssearch.maxrs import max_rs_ds
from .datasets import paper_query_size, tweets
from .harness import Table, environment_banner, timed

SIZES = (1, 10, 20, 30)
CARDINALITIES = (10_000, 25_000, 50_000, 100_000)


def run_sizes(n: int = 50_000, quick: bool = False) -> Table:
    if quick:
        n = min(n, 5_000)
    dataset = tweets(n)
    table = Table(
        f"Fig 13a - MaxRS runtime (ms) vs. rectangle size (Tweet-{n//1000}k)",
        ["size", "OE (ms)", "DS-MaxRS (ms)", "speedup", "match"],
    )
    for k in SIZES:
        width, height = paper_query_size(dataset, k)
        oe_result, oe_t = timed(max_rs_oe, dataset, width, height)
        ds_result, ds_t = timed(max_rs_ds, dataset, width, height)
        table.add_row(
            f"{k}q",
            oe_t * 1e3,
            ds_t * 1e3,
            oe_t / ds_t,
            oe_result.score == ds_result.score,
        )
    table.add_note(environment_banner())
    return table


def run_scalability(size_factor: int = 10, quick: bool = False) -> Table:
    cards = (2_000, 5_000) if quick else CARDINALITIES
    table = Table(
        f"Fig 13b - MaxRS runtime (ms) vs. cardinality (size {size_factor}q)",
        ["n", "OE (ms)", "DS-MaxRS (ms)", "speedup", "match"],
    )
    for n in cards:
        dataset = tweets(n)
        width, height = paper_query_size(dataset, size_factor)
        oe_result, oe_t = timed(max_rs_oe, dataset, width, height)
        ds_result, ds_t = timed(max_rs_ds, dataset, width, height)
        table.add_row(
            n, oe_t * 1e3, ds_t * 1e3, oe_t / ds_t, oe_result.score == ds_result.score
        )
    table.add_note(environment_banner())
    return table


def main() -> None:
    run_sizes().show()
    run_scalability().show()


if __name__ == "__main__":
    main()
