"""Cached dataset construction shared by experiments and benchmarks.

Regenerating a 100k-point dataset per parametrized benchmark would
dominate the suite's runtime; the caches key on (kind, n, seed) and are
process-wide.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from ..core.objects import SpatialDataset
from ..data import generate_poisyn_dataset, generate_tweet_dataset
from ..index import GridIndex

#: Default seed for all experiments (fixed for reproducibility).
SEED = 7


@lru_cache(maxsize=8)
def _tweets(n: int, seed: int) -> SpatialDataset:
    return generate_tweet_dataset(n, seed=seed)


@lru_cache(maxsize=8)
def _poisyn(n: int, seed: int) -> SpatialDataset:
    return generate_poisyn_dataset(n, seed=seed)


@lru_cache(maxsize=8)
def _tweet_index(n: int, granularity: int, seed: int) -> GridIndex:
    return GridIndex.build(_tweets(n, seed), granularity, granularity)


def tweets(n: int, seed: int = SEED) -> SpatialDataset:
    """Cached Tweet-like dataset (normalized cache key)."""
    return _tweets(n, seed)


def poisyn(n: int, seed: int = SEED) -> SpatialDataset:
    """Cached POISyn dataset (normalized cache key)."""
    return _poisyn(n, seed)


def tweet_index(n: int, granularity: int, seed: int = SEED) -> GridIndex:
    """Cached grid index over the cached Tweet dataset."""
    return _tweet_index(n, granularity, seed)


def paper_query_size(dataset: SpatialDataset, k: int) -> Tuple[float, float]:
    """The paper's query-size unit: ``k·q`` with ``q = (W/1000, H/1000)``."""
    bounds = dataset.bounds()
    return k * bounds.width / 1000.0, k * bounds.height / 1000.0
