"""Shared experiment plumbing: timing, tables, environment capture.

Every per-figure experiment module builds a :class:`Table` whose rows
mirror the series the paper plots, prints it as markdown, and returns it
so EXPERIMENTS.md (and tests) can consume the numbers programmatically.
"""

from __future__ import annotations

import platform
import time
from dataclasses import dataclass, field
from typing import Callable, List, Sequence


def timed(fn: Callable, *args, **kwargs):
    """Run ``fn`` once; return ``(result, wall_seconds)``."""
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


@dataclass
class Table:
    """A printable experiment table."""

    title: str
    header: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.header):
            raise ValueError(
                f"row width {len(values)} != header width {len(self.header)}"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    # ------------------------------------------------------------------
    def to_markdown(self) -> str:
        def fmt(v) -> str:
            if isinstance(v, float):
                return f"{v:.4g}"
            return str(v)

        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.header) + " |")
        lines.append("|" + "|".join("---" for _ in self.header) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def column(self, name: str) -> list:
        i = list(self.header).index(name)
        return [row[i] for row in self.rows]

    def show(self) -> None:
        print(self.to_markdown())
        print()


def environment_banner() -> str:
    """One-line description of the machine the numbers came from."""
    import numpy

    return (
        f"Python {platform.python_version()}, numpy {numpy.__version__}, "
        f"{platform.system()} {platform.machine()}"
    )
