"""Figure 10: scalability -- runtime vs. dataset cardinality.

Paper setup: 1..10 x 10^5 objects, size 10q, DS-Search vs. Base.  The
shape to reproduce: Base's O(n²) curve pulls away from DS-Search's
near-linear one, so the speedup grows with n.
"""

from __future__ import annotations

from ..baselines.sweepline import sweep_line_search
from ..data import poisyn_query, weekend_query
from ..dssearch import ds_search
from .datasets import paper_query_size, poisyn, tweets
from .harness import Table, environment_banner, timed

CARDINALITIES = (5_000, 10_000, 20_000, 40_000)


def run(size_factor: int = 10, quick: bool = False) -> Table:
    cards = (1_000, 2_000) if quick else CARDINALITIES
    table = Table(
        f"Fig 10 - runtime (ms) vs. cardinality (size {size_factor}q)",
        ["dataset", "n", "Base (ms)", "DS-Search (ms)", "speedup", "match"],
    )
    for name, get_dataset, make_query in (
        ("Tweet", tweets, weekend_query),
        ("POISyn", poisyn, poisyn_query),
    ):
        for n in cards:
            dataset = get_dataset(n)
            width, height = paper_query_size(dataset, size_factor)
            query = make_query(dataset, width, height)
            base_result, base_t = timed(sweep_line_search, dataset, query)
            ds_result, ds_t = timed(ds_search, dataset, query)
            match = abs(base_result.distance - ds_result.distance) < 1e-6
            table.add_row(name, n, base_t * 1e3, ds_t * 1e3, base_t / ds_t, match)
    table.add_note(environment_banner())
    return table


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
