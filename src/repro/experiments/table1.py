"""Table 1: ratio of index cells searched, and index size.

Paper setup: Tweet-100M, granularities 64/128/256, sizes q..10q.  The
shape to reproduce: only a small fraction of candidate cells is ever
searched, the fraction *decreases* as granularity grows (tighter cell
bounds), and the index size grows with granularity.
"""

from __future__ import annotations

from ..data import weekend_query
from ..index import gi_ds_search
from .datasets import paper_query_size, tweet_index, tweets
from .harness import Table, environment_banner

GRANULARITIES = (64, 128, 256)
SIZES = (1, 4, 7, 10)


def run(n: int = 100_000, quick: bool = False) -> Table:
    if quick:
        n = min(n, 10_000)
    dataset = tweets(n)
    table = Table(
        f"Table 1 - ratio of cells searched (Tweet-{n//1000}k) and index size",
        ["granularity"] + [f"{k}q" for k in SIZES] + ["index size (MB)"],
    )
    for g in GRANULARITIES:
        index = tweet_index(n, g)
        ratios = []
        for k in SIZES:
            width, height = paper_query_size(dataset, k)
            query = weekend_query(dataset, width, height)
            _, stats = gi_ds_search(dataset, query, index, return_stats=True)
            ratios.append(f"{100 * stats.searched_ratio:.2f}%")
        table.add_row(
            f"{g}x{g}", *ratios, index.index_nbytes() / 1e6
        )
    table.add_note(environment_banner())
    return table


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
