"""Table 2: approximation quality of app-GIDS for aggregator F1.

Paper setup: quality = d_app / d_opt for δ in {0.1..0.4} at 1-2 x 10^8
objects; reported qualities are ~1.03-1.06 -- far better than the
worst-case (1+δ) guarantee.  The shape to reproduce: quality stays
close to 1 and never exceeds 1+δ.
"""

from __future__ import annotations

from ..data import weekend_query
from ..dssearch import approximate_search, ds_search
from .datasets import paper_query_size, tweets
from .harness import Table, environment_banner

DELTAS = (0.1, 0.2, 0.3, 0.4)


def run(cardinalities=(25_000, 50_000), size_factor: int = 10,
        quick: bool = False) -> Table:
    if quick:
        cardinalities = (5_000,)
    table = Table(
        "Table 2 - approximation quality d_app/d_opt (F1, Tweet)",
        ["n"] + [f"delta={d}" for d in DELTAS],
    )
    for n in cardinalities:
        dataset = tweets(n)
        width, height = paper_query_size(dataset, size_factor)
        query = weekend_query(dataset, width, height)
        exact = ds_search(dataset, query)
        row = [n]
        for delta in DELTAS:
            approx = approximate_search(dataset, query, delta)
            quality = (
                approx.distance / exact.distance if exact.distance > 0 else 1.0
            )
            assert quality <= 1.0 + delta + 1e-6, "Theorem 3 violated"
            row.append(quality)
        table.add_row(*row)
    table.add_note("quality = 1.0 means the approximate answer is optimal")
    table.add_note(environment_banner())
    return table


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
