"""Figure 11: GI-DS vs. DS-Search across grid-index granularities.

Paper setup: Tweet-100M / POISyn-100M, granularities 64/128/256, sizes
q..10q.  Scaled to the Python-feasible regime where the index's
locality benefit materializes (n >= ~10^5).  The shape to reproduce:
GI-DS beats plain DS-Search at a suitable granularity, and a too-coarse
index degrades it.
"""

from __future__ import annotations

from ..data import weekend_query
from ..dssearch import ds_search
from ..index import gi_ds_search
from .datasets import paper_query_size, tweet_index, tweets
from .harness import Table, environment_banner, timed

GRANULARITIES = (64, 128, 256)
SIZES = (4, 10)


def run(n: int = 150_000, quick: bool = False) -> Table:
    if quick:
        n = min(n, 20_000)
    dataset = tweets(n)
    table = Table(
        f"Fig 11 - runtime (ms) vs. grid index granularity (Tweet-{n//1000}k)",
        ["size", "DS-Search"] + [f"{g}-GI-DS" for g in GRANULARITIES],
    )
    for k in SIZES:
        width, height = paper_query_size(dataset, k)
        query = weekend_query(dataset, width, height)
        _, ds_t = timed(ds_search, dataset, query)
        row = [f"{k}q", ds_t * 1e3]
        for g in GRANULARITIES:
            index = tweet_index(n, g)
            _, gi_t = timed(gi_ds_search, dataset, query, index)
            row.append(gi_t * 1e3)
        table.add_row(*row)
    table.add_note("index build time excluded (query-independent, built once)")
    table.add_note(environment_banner())
    return table


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
