"""Figure 12: runtime of the approximate solution vs. δ.

Paper setup: cardinality 1-3 x 10^8, δ in {0.1, 0.2, 0.3, 0.4}, both
composite aggregators.  The shape to reproduce: runtime decreases as δ
increases (more aggressive pruning, earlier termination).
"""

from __future__ import annotations

from ..data import poisyn_query, weekend_query
from ..index import gi_ds_search
from .datasets import paper_query_size, poisyn, tweets
from .harness import Table, environment_banner, timed

DELTAS = (0.1, 0.2, 0.3, 0.4)


def run(cardinalities=(25_000, 50_000, 100_000), size_factor: int = 10,
        quick: bool = False) -> Table:
    if quick:
        cardinalities = (5_000, 10_000)
    table = Table(
        "Fig 12 - app-GIDS runtime (ms) vs. delta",
        ["aggregator", "n"] + [f"delta={d}" for d in DELTAS],
    )
    for name, get_dataset, make_query in (
        ("F1 (Tweet)", tweets, weekend_query),
        ("F2 (POISyn)", poisyn, poisyn_query),
    ):
        for n in cardinalities:
            dataset = get_dataset(n)
            width, height = paper_query_size(dataset, size_factor)
            query = make_query(dataset, width, height)
            row = [name, n]
            for delta in DELTAS:
                _, seconds = timed(
                    gi_ds_search, dataset, query, None, (64, 64), None, delta
                )
                row.append(seconds * 1e3)
            table.add_row(*row)
    table.add_note(environment_banner())
    return table


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
