"""Figures 14 & 15: the Singapore case study.

Query with the "Orchard" district's category profile (the query region
itself excluded), report the found region, and compare the query's
distance to "Marina Bay" vs. the "Bugis" control.  The shape to
reproduce: the answer lands on Marina Bay, and
dist(Orchard, Marina Bay) << dist(Orchard, Bugis) -- the paper's
Figure 15 ordering.
"""

from __future__ import annotations

from ..core.query import ASRSQuery
from ..data import CATEGORIES, category_aggregator, generate_city_dataset
from ..dssearch import ds_search
from .harness import Table, environment_banner, timed


def run(n: int = 4_556, seed: int = 11, quick: bool = False) -> Table:
    if quick:
        n = min(n, 1_500)
    city, districts = generate_city_dataset(n, seed=seed)
    aggregator = category_aggregator()
    orchard = districts["Orchard"]
    query = ASRSQuery.from_region(city, orchard, aggregator)

    result, seconds = timed(ds_search, city, query, None, orchard)

    reps = {
        "Orchard (query)": query.query_rep,
        "found region": result.representation,
        "Marina Bay": aggregator.apply(city, districts["Marina Bay"]),
        "Bugis": aggregator.apply(city, districts["Bugis"]),
    }
    table = Table(
        f"Fig 14/15 - case study ({n} POIs, runtime {seconds * 1e3:.0f} ms)",
        ["region"] + list(CATEGORIES) + ["dist to query"],
    )
    for name, rep in reps.items():
        table.add_row(name, *[int(v) for v in rep], query.distance_to(rep))

    overlaps = result.region.intersects_open(districts["Marina Bay"])
    d_marina = query.distance_to(reps["Marina Bay"])
    d_bugis = query.distance_to(reps["Bugis"])
    table.add_note(f"found region overlaps Marina Bay: {overlaps}")
    table.add_note(
        f"Fig 15 ordering holds (Marina Bay more similar than Bugis): "
        f"{d_marina < d_bugis}"
    )
    table.add_note(environment_banner())
    return table


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
