"""Per-figure experiment runners (Section 7 reproduction).

Each module regenerates one paper artifact:

* ``python -m repro.experiments.fig8``    -- runtime vs. query size
* ``python -m repro.experiments.fig9``    -- runtime vs. ncol/nrow
* ``python -m repro.experiments.fig10``   -- scalability vs. cardinality
* ``python -m repro.experiments.fig11``   -- GI-DS granularity
* ``python -m repro.experiments.table1``  -- cells searched + index size
* ``python -m repro.experiments.fig12``   -- app-GIDS runtime vs. delta
* ``python -m repro.experiments.table2``  -- approximation quality
* ``python -m repro.experiments.fig13``   -- MaxRS application
* ``python -m repro.experiments.fig14``   -- Singapore case study
* ``python -m repro.experiments.all``     -- everything, in order
"""

from .harness import Table, environment_banner, timed

__all__ = ["Table", "environment_banner", "timed"]
