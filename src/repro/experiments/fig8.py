"""Figure 8: runtime vs. query rectangle size, DS-Search vs. Base.

Paper setup: Tweet-1M and POISyn-1M, sizes q/4q/7q/10q, ncol=nrow=30.
Scaled here to Python-feasible cardinalities (Base is O(n²)); the shape
to reproduce is (a) DS-Search is consistently faster and (b) Base's
runtime grows faster with the query size than DS-Search's.
"""

from __future__ import annotations

from ..baselines.sweepline import sweep_line_search
from ..data import poisyn_query, weekend_query
from ..dssearch import ds_search
from .datasets import paper_query_size, poisyn, tweets
from .harness import Table, environment_banner, timed

SIZES = (1, 4, 7, 10)


def run(n: int = 10_000, quick: bool = False) -> Table:
    if quick:
        n = min(n, 3_000)
    table = Table(
        "Fig 8 - runtime vs. query rectangle size (ms)",
        ["dataset", "size", "Base (ms)", "DS-Search (ms)", "speedup", "match"],
    )
    for name, dataset, make_query in (
        (f"Tweet-{n//1000}k", tweets(n), weekend_query),
        (f"POISyn-{n//1000}k", poisyn(n), poisyn_query),
    ):
        for k in SIZES:
            width, height = paper_query_size(dataset, k)
            query = make_query(dataset, width, height)
            base_result, base_t = timed(sweep_line_search, dataset, query)
            ds_result, ds_t = timed(ds_search, dataset, query)
            match = abs(base_result.distance - ds_result.distance) < 1e-6
            table.add_row(
                name, f"{k}q", base_t * 1e3, ds_t * 1e3, base_t / ds_t, match
            )
    table.add_note(environment_banner())
    return table


def main() -> None:
    run().show()


if __name__ == "__main__":
    main()
