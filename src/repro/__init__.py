"""repro: attribute-aware similar region search (ASRS).

A from-scratch reproduction of Feng, Cong, Jensen, Guo:
"Finding Attribute-aware Similar Regions for Data Analysis",
PVLDB 12(11), 2019.

Public API quick tour
---------------------
* Build a :class:`SpatialDataset` over a :class:`Schema` of categorical
  and numeric attributes.
* Describe the aspects of interest with a :class:`CompositeAggregator`
  of fD / fA / fS terms, each with an optional selection function.
* Form an :class:`ASRSQuery` from an example region or a handcrafted
  target vector.
* Answer it exactly with :func:`ds_search` (Algorithm 1) or, faster on
  large data, with a prebuilt :class:`GridIndex` and :func:`gi_ds_search`
  (Algorithm 2); or approximately with :func:`approximate_search`.
"""

from .core import (
    ASRSQuery,
    AggregatorTerm,
    AverageAggregator,
    CategoricalAttribute,
    ChannelCompiler,
    CompositeAggregator,
    DistributionAggregator,
    NumericAttribute,
    Point,
    Rect,
    RegionResult,
    Schema,
    SelectAll,
    SelectByValue,
    SelectWhere,
    SpatialDataset,
    SpatialObject,
    SumAggregator,
    WeightedLpDistance,
)

__version__ = "1.0.0"

__all__ = [
    "ASRSQuery",
    "AggregatorTerm",
    "AverageAggregator",
    "CategoricalAttribute",
    "ChannelCompiler",
    "CompositeAggregator",
    "DistributionAggregator",
    "NumericAttribute",
    "Point",
    "Rect",
    "RegionResult",
    "Schema",
    "SelectAll",
    "SelectByValue",
    "SelectWhere",
    "SpatialDataset",
    "SpatialObject",
    "SumAggregator",
    "WeightedLpDistance",
    "__version__",
]


def __getattr__(name):
    # Lazy imports keep `import repro` light while still exposing the
    # search entry points at package level.
    if name in ("ds_search", "SearchSettings", "SearchStats"):
        from .dssearch import search as _search

        return getattr(_search, name)
    if name == "approximate_search":
        from .dssearch.approx import approximate_search

        return approximate_search
    if name in ("GridIndex",):
        from .index.grid_index import GridIndex

        return GridIndex
    if name in ("gi_ds_search", "GIDSStats"):
        from .index import gids as _gids

        return getattr(_gids, name)
    if name == "QuerySession":
        from .engine.session import QuerySession

        return QuerySession
    if name in ("max_rs_ds", "max_rs_oe"):
        from .dssearch.maxrs import max_rs_ds
        from .baselines.maxrs_oe import max_rs_oe

        return {"max_rs_ds": max_rs_ds, "max_rs_oe": max_rs_oe}[name]
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
